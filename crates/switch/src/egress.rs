//! The DART egress engine: from `(key, value)` to a RoCEv2 WRITE frame.
//!
//! This is the heart of the §6 prototype. Per report the pipeline:
//!
//! 1. draws the copy index `n ∈ [0, N)` from the RNG extern;
//! 2. hashes the key with the CRC-16 extern (prefix `0xC0`) to the
//!    collector ID, and `(0xA0, n, key)` with the CRC-32C extern to the
//!    slot index — bit-exact with [`dta_core::hash::CrcMapping`];
//! 3. looks the collector ID up in the match-action collector table to
//!    fetch MAC / IP / QPN / rkey / base VA;
//! 4. reads-and-increments the per-collector PSN register;
//! 5. deparses Ethernet ‖ IPv4 ‖ UDP(4791) ‖ BTH ‖ RETH ‖
//!    `checksum ‖ value` ‖ iCRC.
//!
//! Hardware constraints honoured here: the slot count must be a power of
//! two (the modulo reduction is a bit mask on Tofino), keys are bounded
//! (parser depth), and the only mutable state is the PSN register array.

use std::collections::HashSet;

use dta_core::hash::{
    failover_collector, AddressMapping, CrcMapping, FailoverRecord, FailoverTarget, LivenessMask,
};
use dta_core::primitive::{append_encode_entry, increment_decode, PrimitiveSpec};
use dta_obs::{Counter, EventKind, Obs};
use dta_rdma::verbs::RemoteEndpoint;
use dta_wire::dart::SlotLayout;
use dta_wire::roce::{self, AtomicEthRepr, BthRepr, Opcode, Psn, RethRepr};

use crate::externs::{RandomExtern, RegisterArray};
use crate::tables::{InstallError, MatchActionTable};
use crate::SwitchIdentity;

/// Maximum telemetry key length the parser supports.
pub const MAX_KEY_LEN: usize = 64;

/// Cap on distinct keys the failover log retains. Slots store only the
/// non-invertible key *checksum*, so the re-replication sweep must be
/// key-driven: the switch is the one component that sees every remapped
/// key and can remember it. The cap bounds the control-plane SRAM/DRAM
/// this costs; overflow is counted, never silently dropped.
pub const FAILOVER_LOG_CAP: usize = 4096;

/// Errors from the egress engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchError {
    /// The collector ID hashed to has no table entry.
    UnknownCollector(u32),
    /// Slot count must be a power of two for the hardware mask reduction.
    SlotsNotPowerOfTwo(u64),
    /// The key exceeds [`MAX_KEY_LEN`].
    KeyTooLong(usize),
    /// The value length does not match the slot layout.
    ValueLength {
        /// Configured value length.
        expected: usize,
        /// Supplied value length.
        actual: usize,
    },
    /// The collector table is full.
    TableFull,
    /// The endpoint's region cannot hold the configured slots.
    RegionTooSmall {
        /// Bytes required.
        required: u64,
        /// Bytes available.
        available: u64,
    },
    /// Every liveness register reads dead — no collector to report to.
    NoLiveCollector,
    /// The configured primitive is invalid for this geometry, or a
    /// primitive-specific craft entry point was called under a different
    /// primitive.
    InvalidPrimitive(&'static str),
    /// An append ring index beyond the configured ring count.
    RingOutOfRange(u64),
}

impl core::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SwitchError::UnknownCollector(id) => write!(f, "no endpoint for collector {id}"),
            SwitchError::SlotsNotPowerOfTwo(s) => {
                write!(f, "slot count {s} is not a power of two")
            }
            SwitchError::KeyTooLong(len) => write!(f, "key of {len} bytes exceeds parser depth"),
            SwitchError::ValueLength { expected, actual } => {
                write!(f, "value length {actual} != configured {expected}")
            }
            SwitchError::TableFull => write!(f, "collector lookup table full"),
            SwitchError::RegionTooSmall {
                required,
                available,
            } => write!(
                f,
                "region of {available} B cannot hold {required} B of slots"
            ),
            SwitchError::NoLiveCollector => write!(f, "all collectors marked dead"),
            SwitchError::InvalidPrimitive(msg) => write!(f, "invalid primitive: {msg}"),
            SwitchError::RingOutOfRange(ring) => write!(f, "append ring {ring} out of range"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// Static egress configuration (compiled into the P4 program).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EgressConfig {
    /// Redundant copies per key (`N`).
    pub copies: u8,
    /// Slots per collector region (power of two).
    pub slots: u64,
    /// Slot layout (checksum width + value length).
    pub layout: SlotLayout,
    /// Number of collectors the key space is sharded over.
    pub collectors: u32,
    /// UDP source port for crafted reports.
    pub udp_src_port: u16,
    /// Which translation primitive this pipeline runs.
    pub primitive: PrimitiveSpec,
}

impl EgressConfig {
    /// Bytes one entry occupies under the configured primitive.
    pub fn entry_len(&self) -> usize {
        self.primitive.entry_len(&self.layout)
    }

    /// Number of append rings (1 for the non-ring primitives).
    pub fn rings(&self) -> u64 {
        self.primitive.rings(self.slots)
    }
}

/// One crafted DART report, ready for the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CraftedReport {
    /// Collector the report is addressed to.
    pub collector_id: u32,
    /// Copy index the RNG selected.
    pub copy: u8,
    /// Slot index within the collector region.
    pub slot: u64,
    /// The PSN used.
    pub psn: Psn,
    /// The complete Ethernet frame.
    pub frame: Vec<u8>,
}

/// Per-switch egress counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressCounters {
    /// Reports crafted successfully.
    pub reports: u64,
    /// Reports dropped because the collector had no table entry.
    pub unknown_collector: u64,
    /// Reports remapped to a survivor because the primary's liveness
    /// register read dead.
    pub failovers: u64,
    /// Reports dropped because every liveness register read dead.
    pub no_live_collector: u64,
    /// Remapped keys the failover log could not retain because it was
    /// at [`FAILOVER_LOG_CAP`]. The sweep for those keys degrades to
    /// query-time failover (the old behaviour), never to data loss.
    pub failover_log_dropped: u64,
}

/// Cached observability handles: registered once at attach time so the
/// per-report path is a lone atomic add per counter.
struct EgressObs {
    obs: Obs,
    reports: Counter,
    unknown_collector: Counter,
    failovers: Counter,
    no_live_collector: Counter,
}

/// The DART report-crafting engine of one switch.
pub struct DartEgress {
    identity: SwitchIdentity,
    config: EgressConfig,
    mapping: CrcMapping,
    rng: RandomExtern,
    collector_table: MatchActionTable<u32, RemoteEndpoint>,
    psn_registers: RegisterArray<u32>,
    /// Append tail-pointer registers, one per (collector, ring), laid
    /// out `collector * rings + ring`. Each holds the *last stored*
    /// sequence number of its ring (0 = never written); the data plane
    /// post-increments it per append, exactly the PSN-register idiom.
    /// Empty for the non-ring primitives.
    tail_registers: RegisterArray<u32>,
    /// One bit of mutable state per collector: alive (1) or dead (0),
    /// written by the control plane's health monitor, read feed-forward
    /// by every report (§6's register-extern-only constraint).
    liveness: RegisterArray<u8>,
    /// Control-plane log of keys remapped while their primary was dead:
    /// one [`FailoverRecord`] per distinct key, insertion-ordered (so
    /// draining is deterministic), membership-checked through
    /// `failover_logged`. The recovery sweep drains this.
    failover_log: Vec<FailoverRecord>,
    failover_logged: HashSet<Vec<u8>>,
    counters: EgressCounters,
    obs: Option<EgressObs>,
}

impl DartEgress {
    /// Build the engine. `slots` must be a power of two.
    pub fn new(
        identity: SwitchIdentity,
        config: EgressConfig,
        rng_seed: u64,
    ) -> Result<DartEgress, SwitchError> {
        if !config.slots.is_power_of_two() {
            return Err(SwitchError::SlotsNotPowerOfTwo(config.slots));
        }
        config
            .primitive
            .validate(config.slots, config.copies, &config.layout)
            .map_err(|e| match e {
                dta_core::DartError::InvalidConfig(msg) => SwitchError::InvalidPrimitive(msg),
                _ => SwitchError::InvalidPrimitive("primitive rejected the geometry"),
            })?;
        let collectors = usize::try_from(config.collectors).unwrap();
        let mut liveness = RegisterArray::new(collectors);
        for id in 0..collectors {
            liveness.write(id, 1).expect("sized above");
        }
        // Tail registers only exist for the ring primitive; Key-Write
        // and Key-Increment keep the SRAM.
        let tail_cells = match config.primitive {
            PrimitiveSpec::Append { .. } => collectors * config.rings() as usize,
            _ => 0,
        };
        Ok(DartEgress {
            identity,
            config,
            mapping: CrcMapping::new(),
            rng: RandomExtern::new(rng_seed),
            collector_table: MatchActionTable::new(collectors),
            psn_registers: RegisterArray::new(collectors),
            tail_registers: RegisterArray::new(tail_cells),
            liveness,
            failover_log: Vec::new(),
            failover_logged: HashSet::new(),
            counters: EgressCounters::default(),
            obs: None,
        })
    }

    /// Attach an observability handle. Counters are registered here,
    /// once, under `dta_switch_*`; the per-report hot path then only
    /// performs atomic adds. A [`Obs::noop`] handle keeps the call
    /// sites valid while recording no events.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = Some(EgressObs {
            reports: obs.counter("dta_switch_reports_total"),
            unknown_collector: obs.counter("dta_switch_unknown_collector_total"),
            failovers: obs.counter("dta_switch_failovers_total"),
            no_live_collector: obs.counter("dta_switch_no_live_collector_total"),
            obs: obs.clone(),
        });
    }

    /// The static configuration.
    pub fn config(&self) -> &EgressConfig {
        &self.config
    }

    /// This switch's identity.
    pub fn identity(&self) -> SwitchIdentity {
        self.identity
    }

    /// Egress counters.
    pub fn counters(&self) -> EgressCounters {
        self.counters
    }

    /// Install a collector endpoint (control-plane write; §6's lookup
    /// table costs ~20 B of SRAM per entry).
    pub fn install_collector(
        &mut self,
        collector_id: u32,
        endpoint: RemoteEndpoint,
    ) -> Result<(), SwitchError> {
        let required = self.config.slots * self.config.entry_len() as u64;
        if endpoint.region_len < required {
            return Err(SwitchError::RegionTooSmall {
                required,
                available: endpoint.region_len,
            });
        }
        // Seed the PSN register with the QP's negotiated start PSN so the
        // first crafted report is exactly what the collector expects.
        self.psn_registers
            .write(collector_id as usize, endpoint.start_psn.value())
            .ok();
        self.collector_table
            .install(collector_id, endpoint)
            .map_err(|InstallError::Full| SwitchError::TableFull)
    }

    /// Control-plane write of one collector's liveness register. The
    /// health monitor calls this on every state flip; the data plane only
    /// ever reads it.
    pub fn set_collector_liveness(
        &mut self,
        collector_id: u32,
        live: bool,
    ) -> Result<(), SwitchError> {
        self.liveness
            .write(collector_id as usize, u8::from(live))
            .map_err(|_| SwitchError::UnknownCollector(collector_id))
    }

    /// The liveness registers as a mask (what the failover hash runs on).
    pub fn liveness_mask(&self) -> LivenessMask {
        let total = self.config.collectors.min(LivenessMask::MAX_COLLECTORS);
        let mut bits = 0u64;
        for id in 0..total {
            if self.liveness.read(id as usize).unwrap_or(0) != 0 {
                bits |= 1 << id;
            }
        }
        LivenessMask::from_bits(bits, total)
    }

    /// Control-plane write of one PSN register — used when a QP is
    /// renegotiated at a nonzero PSN (and by wraparound tests to pre-wind
    /// a register next to the 24-bit modulus).
    pub fn set_psn_register(&mut self, collector_id: u32, psn: Psn) -> Result<(), SwitchError> {
        self.psn_registers
            .write(collector_id as usize, psn.value())
            .map_err(|_| SwitchError::UnknownCollector(collector_id))
    }

    /// Control-plane write of one append tail register (the last stored
    /// sequence number of `(collector_id, ring)`) — used when a switch
    /// re-attaches to a collector whose rings already hold data, and by
    /// wraparound tests to pre-wind a tail next to the `u32` modulus.
    pub fn set_ring_tail(
        &mut self,
        collector_id: u32,
        ring: u64,
        stored_seq: u32,
    ) -> Result<(), SwitchError> {
        let rings = self.config.rings();
        if ring >= rings {
            return Err(SwitchError::RingOutOfRange(ring));
        }
        self.tail_registers
            .write(
                collector_id as usize * rings as usize + ring as usize,
                stored_seq,
            )
            .map_err(|_| SwitchError::UnknownCollector(collector_id))
    }

    /// Read one append tail register (None when out of range or the
    /// primitive has no rings).
    pub fn ring_tail(&self, collector_id: u32, ring: u64) -> Option<u32> {
        let rings = self.config.rings();
        if ring >= rings {
            return None;
        }
        self.tail_registers
            .read(collector_id as usize * rings as usize + ring as usize)
            .ok()
    }

    /// Drain every failover record whose dead primary was
    /// `primary` — called by the control plane when that collector
    /// transitions back to alive, to seed the re-replication sweep.
    /// Records for other (still dead) primaries stay logged; drained
    /// keys become loggable again, so a second outage re-records them.
    pub fn drain_failover_records(&mut self, primary: u32) -> Vec<FailoverRecord> {
        let mut drained = Vec::new();
        let mut kept = Vec::new();
        for record in self.failover_log.drain(..) {
            if record.primary == primary {
                self.failover_logged.remove(&record.key);
                drained.push(record);
            } else {
                kept.push(record);
            }
        }
        self.failover_log = kept;
        drained
    }

    /// Number of distinct keys currently held in the failover log.
    pub fn failover_log_len(&self) -> usize {
        self.failover_log.len()
    }

    /// Data-plane collector resolution: the primary hash, then the
    /// liveness registers. A dead primary's report is remapped onto a
    /// live survivor by [`failover_collector`] — the identical function
    /// the query side evaluates, so readers always know where a key's
    /// writes went. Deployments beyond the 64-collector mask limit fall
    /// back to primary-only routing.
    fn resolve_collector(&mut self, key: &[u8]) -> Result<u32, SwitchError> {
        if self.config.collectors > LivenessMask::MAX_COLLECTORS {
            return Ok(self.mapping.collector(key, self.config.collectors));
        }
        match failover_collector(&self.mapping, key, self.liveness_mask()) {
            FailoverTarget::Primary(id) => Ok(id),
            FailoverTarget::Failover { primary, target } => {
                self.counters.failovers += 1;
                if self.failover_logged.contains(key) {
                    // Already logged; first record wins — the sweep
                    // re-derives the read location from the outage mask,
                    // so the recorded target is advisory.
                } else if self.failover_logged.len() < FAILOVER_LOG_CAP {
                    self.failover_logged.insert(key.to_vec());
                    self.failover_log.push(FailoverRecord {
                        primary,
                        target,
                        key: key.to_vec(),
                    });
                } else {
                    self.counters.failover_log_dropped += 1;
                }
                if let Some(o) = &self.obs {
                    o.failovers.inc();
                    o.obs.event(EventKind::FailoverRemap {
                        switch: self.identity.switch_id,
                        primary: primary as u8,
                        target: target as u8,
                    });
                }
                Ok(target)
            }
            FailoverTarget::NoneLive => {
                self.counters.no_live_collector += 1;
                if let Some(o) = &self.obs {
                    o.no_live_collector.inc();
                    o.obs.event(EventKind::NoLiveCollector {
                        switch: self.identity.switch_id,
                    });
                }
                Err(SwitchError::NoLiveCollector)
            }
        }
    }

    /// Estimated on-switch SRAM per collector: the table entry (MAC 6 +
    /// IP 4 + QPN 3 + rkey 4) plus the 24-bit PSN register ≈ 20 bytes,
    /// matching the paper's figure.
    pub const fn sram_bytes_per_collector() -> usize {
        6 + 4 + 3 + 4 + 3
    }

    /// Total register/table SRAM this switch dedicates to DART state
    /// under the configured primitive: the per-collector lookup entry +
    /// PSN register, plus 4 bytes per append tail register. This is what
    /// the Append primitive costs over the paper's ~20 B/collector —
    /// still register-file state, never per-flow state.
    pub fn sram_bytes(&self) -> usize {
        self.config.collectors as usize * Self::sram_bytes_per_collector()
            + self.tail_registers.len() * 4
    }

    /// Craft every frame one report requires under the configured
    /// primitive — the unified entry point the pipeline dispatches
    /// through:
    ///
    /// * Key-Write: `N` RDMA WRITEs, one per redundant copy;
    /// * Append: one WRITE landing the entry at the ring tail;
    /// * Key-Increment: `N` RC FETCH_ADDs, one per counter copy.
    pub fn craft(&mut self, key: &[u8], value: &[u8]) -> Result<Vec<CraftedReport>, SwitchError> {
        match self.config.primitive {
            PrimitiveSpec::KeyWrite => (0..self.config.copies)
                .map(|copy| self.craft_report_copy(key, value, copy))
                .collect(),
            PrimitiveSpec::Append { .. } => Ok(vec![self.craft_append(key, value)?]),
            PrimitiveSpec::KeyIncrement => (0..self.config.copies)
                .map(|copy| self.craft_increment_copy(key, value, copy))
                .collect(),
        }
    }

    /// Craft one report with an RNG-chosen copy index.
    pub fn craft_report(&mut self, key: &[u8], value: &[u8]) -> Result<CraftedReport, SwitchError> {
        let copy = self.rng.next_below(self.config.copies);
        self.craft_report_copy(key, value, copy)
    }

    /// Craft one report for an explicit copy index (deterministic tests;
    /// also used to flush all `N` copies at once).
    pub fn craft_report_copy(
        &mut self,
        key: &[u8],
        value: &[u8],
        copy: u8,
    ) -> Result<CraftedReport, SwitchError> {
        if self.config.primitive != PrimitiveSpec::KeyWrite {
            return Err(SwitchError::InvalidPrimitive(
                "craft_report is the Key-Write path; use craft()",
            ));
        }
        if key.len() > MAX_KEY_LEN {
            return Err(SwitchError::KeyTooLong(key.len()));
        }
        if value.len() != self.config.layout.value_len {
            return Err(SwitchError::ValueLength {
                expected: self.config.layout.value_len,
                actual: value.len(),
            });
        }

        // CRC externs (collector, slot, checksum) + liveness failover.
        let collector_id = self.resolve_collector(key)?;
        let slot = self.mapping.slot(key, copy, self.config.slots);
        let key_checksum = self.mapping.key_checksum(key);

        // Collector lookup table.
        let endpoint = match self.collector_table.lookup(&collector_id) {
            Some(ep) => *ep,
            None => {
                self.counters.unknown_collector += 1;
                if let Some(o) = &self.obs {
                    o.unknown_collector.inc();
                }
                return Err(SwitchError::UnknownCollector(collector_id));
            }
        };

        // PSN register: post-increment, 24-bit wrap.
        let raw = self
            .psn_registers
            .read_modify_write(collector_id as usize, |v| (v + 1) & (Psn::MODULUS - 1))
            .expect("register array sized to collectors");
        let psn = Psn::new(raw);

        // Slot payload: checksum ‖ value.
        let slot_len = self.config.layout.slot_len();
        let mut payload = vec![0u8; slot_len];
        self.config
            .layout
            .encode(key_checksum, value, &mut payload)
            .expect("lengths validated above");

        let va = endpoint.base_va + slot * slot_len as u64;
        let frame = self.deparse(&endpoint, psn, va, payload);
        self.counters.reports += 1;
        if let Some(o) = &self.obs {
            o.reports.inc();
            o.obs.event(EventKind::ReportCrafted {
                switch: self.identity.switch_id,
                collector: collector_id as u8,
                copy,
                psn: psn.value(),
            });
        }
        Ok(CraftedReport {
            collector_id,
            copy,
            slot,
            psn,
            frame,
        })
    }

    /// Craft a single *native multi-write* report carrying all `N` slot
    /// addresses at once (§7's SmartNIC primitive; terminated by
    /// `dta_rdma::native::NativeNic`). One packet replaces `N` WRITEs,
    /// cutting the reporting overhead by roughly `N×`.
    pub fn craft_multiwrite_report(
        &mut self,
        key: &[u8],
        value: &[u8],
    ) -> Result<CraftedReport, SwitchError> {
        if self.config.primitive != PrimitiveSpec::KeyWrite {
            return Err(SwitchError::InvalidPrimitive(
                "multiwrite is a Key-Write (§7) extension",
            ));
        }
        if key.len() > MAX_KEY_LEN {
            return Err(SwitchError::KeyTooLong(key.len()));
        }
        if value.len() != self.config.layout.value_len {
            return Err(SwitchError::ValueLength {
                expected: self.config.layout.value_len,
                actual: value.len(),
            });
        }
        let collector_id = self.resolve_collector(key)?;
        let endpoint = match self.collector_table.lookup(&collector_id) {
            Some(ep) => *ep,
            None => {
                self.counters.unknown_collector += 1;
                if let Some(o) = &self.obs {
                    o.unknown_collector.inc();
                }
                return Err(SwitchError::UnknownCollector(collector_id));
            }
        };
        let raw = self
            .psn_registers
            .read_modify_write(collector_id as usize, |v| (v + 1) & (Psn::MODULUS - 1))
            .expect("register array sized to collectors");
        let psn = Psn::new(raw);

        let slot_len = self.config.layout.slot_len();
        let mut payload = vec![0u8; slot_len];
        self.config
            .layout
            .encode(self.mapping.key_checksum(key), value, &mut payload)
            .expect("lengths validated above");

        let addresses: Vec<u64> = (0..self.config.copies)
            .map(|copy| {
                endpoint.base_va + self.mapping.slot(key, copy, self.config.slots) * slot_len as u64
            })
            .collect();
        let first_slot = (addresses[0] - endpoint.base_va) / slot_len as u64;

        let mut body = dta_rdma::native::MULTIWRITE_MAGIC.to_vec();
        body.extend_from_slice(
            &dta_wire::dart::MultiWriteRepr { addresses, payload }
                .to_bytes()
                .expect("1..=255 addresses"),
        );
        let pad = ((4 - body.len() % 4) % 4) as u8;
        let packet = roce::RoceRepr::Send {
            bth: BthRepr {
                opcode: Opcode::UcSendOnly,
                solicited: false,
                migration: true,
                pad_count: pad,
                partition_key: 0xFFFF,
                dest_qp: endpoint.qpn,
                ack_request: false,
                psn: psn.value(),
            },
            payload: body,
        };
        let frame = self.deparse_packet(&endpoint, &packet);
        self.counters.reports += 1;
        if let Some(o) = &self.obs {
            o.reports.inc();
            o.obs.event(EventKind::ReportCrafted {
                switch: self.identity.switch_id,
                collector: collector_id as u8,
                copy: 0,
                psn: psn.value(),
            });
        }
        Ok(CraftedReport {
            collector_id,
            copy: 0,
            slot: first_slot,
            psn,
            frame,
        })
    }

    /// Craft the single WRITE that lands one append entry at its ring's
    /// tail. The listkey names the ring (`slot(listkey, 0, rings)`); the
    /// tail register names the position; the entry carries its own
    /// sequence number so readers stay stateless across wraparound.
    pub fn craft_append(
        &mut self,
        listkey: &[u8],
        value: &[u8],
    ) -> Result<CraftedReport, SwitchError> {
        let ring_capacity = match self.config.primitive {
            PrimitiveSpec::Append { ring_capacity } => ring_capacity,
            _ => {
                return Err(SwitchError::InvalidPrimitive(
                    "craft_append requires the Append primitive",
                ))
            }
        };
        if listkey.len() > MAX_KEY_LEN {
            return Err(SwitchError::KeyTooLong(listkey.len()));
        }
        if value.len() != self.config.layout.value_len {
            return Err(SwitchError::ValueLength {
                expected: self.config.layout.value_len,
                actual: value.len(),
            });
        }

        let collector_id = self.resolve_collector(listkey)?;
        let rings = self.config.rings();
        let ring = self.mapping.slot(listkey, 0, rings);
        let key_checksum = self.mapping.key_checksum(listkey);
        let endpoint = match self.collector_table.lookup(&collector_id) {
            Some(ep) => *ep,
            None => {
                self.counters.unknown_collector += 1;
                if let Some(o) = &self.obs {
                    o.unknown_collector.inc();
                }
                return Err(SwitchError::UnknownCollector(collector_id));
            }
        };

        // Tail register: post-increment over the full u32 range. The
        // stateful ALU returns the OLD value, so re-apply the transform
        // for the sequence number this entry stores.
        let old = self
            .tail_registers
            .read_modify_write(
                collector_id as usize * rings as usize + ring as usize,
                |v| v.wrapping_add(1),
            )
            .expect("tail registers sized to collectors × rings");
        let stored = old.wrapping_add(1);
        let position = u64::from(stored.wrapping_sub(1)) % ring_capacity;

        let raw = self
            .psn_registers
            .read_modify_write(collector_id as usize, |v| (v + 1) & (Psn::MODULUS - 1))
            .expect("register array sized to collectors");
        let psn = Psn::new(raw);

        let entry_len = self.config.entry_len();
        let mut payload = vec![0u8; entry_len];
        append_encode_entry(
            &self.config.layout,
            stored,
            key_checksum,
            value,
            &mut payload,
        )
        .expect("lengths validated above");

        let slot = ring * ring_capacity + position;
        let va = endpoint.base_va + slot * entry_len as u64;
        let frame = self.deparse(&endpoint, psn, va, payload);
        self.counters.reports += 1;
        if let Some(o) = &self.obs {
            o.reports.inc();
            o.obs.event(EventKind::ReportCrafted {
                switch: self.identity.switch_id,
                collector: collector_id as u8,
                copy: 0,
                psn: psn.value(),
            });
        }
        Ok(CraftedReport {
            collector_id,
            copy: 0,
            slot,
            psn,
            frame,
        })
    }

    /// Craft the RC FETCH_ADD that adds this report's delta (the 8-byte
    /// big-endian value) into copy `copy`'s counter word. Atomics are
    /// RC-only in the RDMA spec, so the frame requests an ACK; the
    /// pipeline fire-and-forgets it §6-style.
    pub fn craft_increment_copy(
        &mut self,
        key: &[u8],
        value: &[u8],
        copy: u8,
    ) -> Result<CraftedReport, SwitchError> {
        if self.config.primitive != PrimitiveSpec::KeyIncrement {
            return Err(SwitchError::InvalidPrimitive(
                "craft_increment requires the Key-Increment primitive",
            ));
        }
        if key.len() > MAX_KEY_LEN {
            return Err(SwitchError::KeyTooLong(key.len()));
        }
        let delta = increment_decode(value).map_err(|_| SwitchError::ValueLength {
            expected: 8,
            actual: value.len(),
        })?;

        let collector_id = self.resolve_collector(key)?;
        let slot = self.mapping.slot(key, copy, self.config.slots);
        let endpoint = match self.collector_table.lookup(&collector_id) {
            Some(ep) => *ep,
            None => {
                self.counters.unknown_collector += 1;
                if let Some(o) = &self.obs {
                    o.unknown_collector.inc();
                }
                return Err(SwitchError::UnknownCollector(collector_id));
            }
        };
        let raw = self
            .psn_registers
            .read_modify_write(collector_id as usize, |v| (v + 1) & (Psn::MODULUS - 1))
            .expect("register array sized to collectors");
        let psn = Psn::new(raw);

        let entry_len = self.config.entry_len() as u64;
        let packet = roce::RoceRepr::FetchAdd {
            bth: BthRepr {
                opcode: Opcode::RcFetchAdd,
                solicited: false,
                migration: true,
                pad_count: 0,
                partition_key: 0xFFFF,
                dest_qp: endpoint.qpn,
                ack_request: true,
                psn: psn.value(),
            },
            atomic: AtomicEthRepr {
                virtual_addr: endpoint.base_va + slot * entry_len,
                rkey: endpoint.rkey,
                swap_or_add: delta,
                compare: 0,
            },
        };
        let frame = self.deparse_packet(&endpoint, &packet);
        self.counters.reports += 1;
        if let Some(o) = &self.obs {
            o.reports.inc();
            o.obs.event(EventKind::ReportCrafted {
                switch: self.identity.switch_id,
                collector: collector_id as u8,
                copy,
                psn: psn.value(),
            });
        }
        Ok(CraftedReport {
            collector_id,
            copy,
            slot,
            psn,
            frame,
        })
    }

    /// The deparser for a standard RDMA WRITE report.
    fn deparse(&self, endpoint: &RemoteEndpoint, psn: Psn, va: u64, payload: Vec<u8>) -> Vec<u8> {
        let pad_count = ((4 - payload.len() % 4) % 4) as u8;
        let dma_len = payload.len() as u32;
        let bth = BthRepr {
            opcode: Opcode::UcRdmaWriteOnly,
            solicited: false,
            migration: true,
            pad_count,
            partition_key: 0xFFFF,
            dest_qp: endpoint.qpn,
            ack_request: false,
            psn: psn.value(),
        };
        let reth = RethRepr {
            virtual_addr: va,
            rkey: endpoint.rkey,
            dma_len,
        };
        self.deparse_packet(endpoint, &roce::RoceRepr::Write { bth, reth, payload })
    }

    /// The generic deparser: emit the full header stack and iCRC trailer
    /// for any transport packet (shared with the sketch reporter —
    /// see [`crate::deparse`]).
    fn deparse_packet(&self, endpoint: &RemoteEndpoint, packet: &roce::RoceRepr) -> Vec<u8> {
        crate::deparse::deparse_roce_frame(
            self.identity.mac,
            endpoint.mac,
            self.identity.ip,
            endpoint.ip,
            self.config.udp_src_port,
            packet,
        )
    }
}

impl core::fmt::Debug for DartEgress {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DartEgress")
            .field("identity", &self.identity)
            .field("config", &self.config)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_wire::dart::ChecksumWidth;
    use dta_wire::{ethernet, ipv4};

    fn endpoint() -> RemoteEndpoint {
        RemoteEndpoint {
            mac: ethernet::Address([0x02, 0, 0, 0, 0, 2]),
            ip: ipv4::Address([10, 0, 0, 2]),
            qpn: 0x100,
            rkey: 0x1000,
            base_va: 0x10000,
            region_len: 24 * 1024,
            start_psn: Psn::new(0),
        }
    }

    fn config() -> EgressConfig {
        EgressConfig {
            copies: 2,
            slots: 1024,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: 20,
            },
            collectors: 1,
            udp_src_port: 49152,
            primitive: dta_core::PrimitiveSpec::KeyWrite,
        }
    }

    fn egress() -> DartEgress {
        let mut e = DartEgress::new(SwitchIdentity::derived(1), config(), 7).unwrap();
        e.install_collector(0, endpoint()).unwrap();
        e
    }

    #[test]
    fn rejects_non_power_of_two_slots() {
        let mut cfg = config();
        cfg.slots = 1000;
        assert_eq!(
            DartEgress::new(SwitchIdentity::derived(1), cfg, 7).err(),
            Some(SwitchError::SlotsNotPowerOfTwo(1000))
        );
    }

    #[test]
    fn crafted_frame_matches_nic_builder() {
        // The switch deparser and the NIC-side reference builder must be
        // byte-identical for the same logical packet.
        let mut e = egress();
        let report = e.craft_report_copy(b"flow-key", &[9u8; 20], 1).unwrap();

        let mapping = CrcMapping::new();
        let slot = mapping.slot(b"flow-key", 1, 1024);
        let mut payload = vec![0u8; 24];
        SlotLayout {
            checksum: ChecksumWidth::B32,
            value_len: 20,
        }
        .encode(mapping.key_checksum(b"flow-key"), &[9u8; 20], &mut payload)
        .unwrap();
        let reference = dta_rdma::nic::build_roce_frame(
            SwitchIdentity::derived(1).mac,
            endpoint().mac,
            SwitchIdentity::derived(1).ip,
            endpoint().ip,
            49152,
            &roce::RoceRepr::Write {
                bth: BthRepr {
                    opcode: Opcode::UcRdmaWriteOnly,
                    solicited: false,
                    migration: true,
                    pad_count: 0,
                    partition_key: 0xFFFF,
                    dest_qp: 0x100,
                    ack_request: false,
                    psn: 0,
                },
                reth: RethRepr {
                    virtual_addr: 0x10000 + slot * 24,
                    rkey: 0x1000,
                    dma_len: 24,
                },
                payload,
            },
        );
        assert_eq!(report.frame, reference);
        assert_eq!(report.slot, slot);
    }

    #[test]
    fn psn_increments_per_report() {
        let mut e = egress();
        let r0 = e.craft_report_copy(b"k", &[0u8; 20], 0).unwrap();
        let r1 = e.craft_report_copy(b"k", &[0u8; 20], 1).unwrap();
        assert_eq!(r0.psn, Psn::new(0));
        assert_eq!(r1.psn, Psn::new(1));
        assert_eq!(e.counters().reports, 2);
    }

    #[test]
    fn rng_copy_indices_in_range() {
        let mut e = egress();
        for _ in 0..50 {
            let r = e.craft_report(b"k", &[0u8; 20]).unwrap();
            assert!(r.copy < 2);
        }
    }

    #[test]
    fn unknown_collector_counted() {
        let mut e = DartEgress::new(SwitchIdentity::derived(1), config(), 7).unwrap();
        assert!(matches!(
            e.craft_report_copy(b"k", &[0u8; 20], 0),
            Err(SwitchError::UnknownCollector(0))
        ));
        assert_eq!(e.counters().unknown_collector, 1);
    }

    #[test]
    fn key_and_value_validation() {
        let mut e = egress();
        let long_key = vec![0u8; MAX_KEY_LEN + 1];
        assert!(matches!(
            e.craft_report_copy(&long_key, &[0u8; 20], 0),
            Err(SwitchError::KeyTooLong(_))
        ));
        assert!(matches!(
            e.craft_report_copy(b"k", &[0u8; 4], 0),
            Err(SwitchError::ValueLength { .. })
        ));
    }

    #[test]
    fn region_size_validated_at_install() {
        let mut e = DartEgress::new(SwitchIdentity::derived(1), config(), 7).unwrap();
        let mut small = endpoint();
        small.region_len = 100;
        assert!(matches!(
            e.install_collector(0, small),
            Err(SwitchError::RegionTooSmall { .. })
        ));
    }

    #[test]
    fn sram_budget_matches_paper() {
        assert_eq!(DartEgress::sram_bytes_per_collector(), 20);
    }

    #[test]
    fn multiwrite_report_is_one_packet_for_all_copies() {
        let mut e = egress();
        let report = e.craft_multiwrite_report(b"mw-key", &[3u8; 20]).unwrap();
        // One frame, substantially smaller than two separate WRITE frames.
        let two_writes: usize = {
            let mut f = egress();
            let a = f.craft_report_copy(b"mw-key", &[3u8; 20], 0).unwrap();
            let b = f.craft_report_copy(b"mw-key", &[3u8; 20], 1).unwrap();
            a.frame.len() + b.frame.len()
        };
        assert!(
            report.frame.len() < two_writes * 2 / 3,
            "multiwrite {} B vs 2 writes {} B",
            report.frame.len(),
            two_writes
        );
    }

    #[test]
    fn multiwrite_validations() {
        let mut e = egress();
        assert!(matches!(
            e.craft_multiwrite_report(&[0u8; MAX_KEY_LEN + 1], &[0u8; 20]),
            Err(SwitchError::KeyTooLong(_))
        ));
        assert!(matches!(
            e.craft_multiwrite_report(b"k", &[0u8; 3]),
            Err(SwitchError::ValueLength { .. })
        ));
        let mut bare = DartEgress::new(SwitchIdentity::derived(1), config(), 7).unwrap();
        assert!(matches!(
            bare.craft_multiwrite_report(b"k", &[0u8; 20]),
            Err(SwitchError::UnknownCollector(_))
        ));
    }

    #[test]
    fn psn_wraps_at_24_bits() {
        let mut e = egress();
        // Pre-wind the register to the last PSN before the modulus, then
        // craft across the wrap: MODULUS-1 → 0 → 1.
        e.set_psn_register(0, Psn::new(Psn::MODULUS - 1)).unwrap();
        let r0 = e.craft_report_copy(b"k", &[0u8; 20], 0).unwrap();
        let r1 = e.craft_report_copy(b"k", &[0u8; 20], 1).unwrap();
        let r2 = e.craft_report_copy(b"k", &[0u8; 20], 0).unwrap();
        assert_eq!(r0.psn, Psn::new(Psn::MODULUS - 1));
        assert_eq!(r1.psn, Psn::new(0));
        assert_eq!(r2.psn, Psn::new(1));
    }

    fn endpoint_for(id: u32) -> RemoteEndpoint {
        RemoteEndpoint {
            mac: ethernet::Address([0x02, 0, 0, 0, 0, 2 + id as u8]),
            ip: ipv4::Address([10, 0, 0, 2 + id as u8]),
            qpn: 0x100 + id,
            rkey: 0x1000 + id,
            base_va: 0x10000,
            region_len: 24 * 1024,
            start_psn: Psn::new(0),
        }
    }

    fn egress_pair() -> DartEgress {
        let mut cfg = config();
        cfg.collectors = 2;
        let mut e = DartEgress::new(SwitchIdentity::derived(1), cfg, 7).unwrap();
        e.install_collector(0, endpoint_for(0)).unwrap();
        e.install_collector(1, endpoint_for(1)).unwrap();
        e
    }

    #[test]
    fn psn_register_seeded_from_endpoint_start_psn() {
        let mut cfg = config();
        cfg.collectors = 1;
        let mut e = DartEgress::new(SwitchIdentity::derived(1), cfg, 7).unwrap();
        let mut ep = endpoint();
        ep.start_psn = Psn::new(500);
        e.install_collector(0, ep).unwrap();
        let r = e.craft_report_copy(b"k", &[0u8; 20], 0).unwrap();
        assert_eq!(r.psn, Psn::new(500));
    }

    #[test]
    fn dead_primary_fails_over_to_survivor() {
        let mut e = egress_pair();
        let mapping = CrcMapping::new();
        let primary = mapping.collector(b"fo-key", 2);
        let survivor = 1 - primary;

        // Healthy: report goes to the primary.
        let r = e.craft_report_copy(b"fo-key", &[1u8; 20], 0).unwrap();
        assert_eq!(r.collector_id, primary);
        assert_eq!(e.counters().failovers, 0);

        // Kill the primary's liveness register: the same key now goes to
        // the survivor, slot hash unchanged.
        e.set_collector_liveness(primary, false).unwrap();
        let r = e.craft_report_copy(b"fo-key", &[1u8; 20], 0).unwrap();
        assert_eq!(r.collector_id, survivor);
        assert_eq!(r.slot, mapping.slot(b"fo-key", 0, 1024));
        assert_eq!(e.counters().failovers, 1);
        // The frame is really addressed to the survivor's endpoint.
        let eth = ethernet::Frame::new_checked(&r.frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.dst_addr(), endpoint_for(survivor).ip);

        // Recovery: liveness restored, reports return home.
        e.set_collector_liveness(primary, true).unwrap();
        let r = e.craft_report_copy(b"fo-key", &[1u8; 20], 0).unwrap();
        assert_eq!(r.collector_id, primary);
    }

    #[test]
    fn all_collectors_dead_is_an_error_not_a_panic() {
        let mut e = egress_pair();
        e.set_collector_liveness(0, false).unwrap();
        e.set_collector_liveness(1, false).unwrap();
        assert_eq!(
            e.craft_report_copy(b"k", &[0u8; 20], 0),
            Err(SwitchError::NoLiveCollector)
        );
        assert_eq!(e.counters().no_live_collector, 1);
        assert_eq!(e.liveness_mask().live_count(), 0);
    }

    #[test]
    fn obs_counts_reports_and_failovers() {
        let mut e = egress_pair();
        let obs = Obs::new();
        e.attach_obs(&obs);
        let mapping = CrcMapping::new();
        let primary = mapping.collector(b"fo-key", 2);

        e.craft_report_copy(b"fo-key", &[1u8; 20], 0).unwrap();
        e.set_collector_liveness(primary, false).unwrap();
        e.craft_report_copy(b"fo-key", &[1u8; 20], 1).unwrap();

        let reg = obs.registry();
        assert_eq!(reg.counter_value("dta_switch_reports_total"), Some(2));
        assert_eq!(reg.counter_value("dta_switch_failovers_total"), Some(1));
        // Lifecycle events: two crafts, one remap, in order.
        let crafted = obs.ring().events_named("report_crafted");
        assert_eq!(crafted.len(), 2);
        let remaps = obs.ring().events_named("failover_remap");
        assert_eq!(remaps.len(), 1);
        match remaps[0].kind {
            EventKind::FailoverRemap {
                primary: p, target, ..
            } => {
                assert_eq!(u32::from(p), primary);
                assert_eq!(u32::from(target), 1 - primary);
            }
            other => panic!("unexpected event {other:?}"),
        }

        // All dead: the craft fails and the drop is visible.
        e.set_collector_liveness(1 - primary, false).unwrap();
        assert!(e.craft_report_copy(b"fo-key", &[1u8; 20], 0).is_err());
        assert_eq!(
            reg.counter_value("dta_switch_no_live_collector_total"),
            Some(1)
        );
        assert_eq!(obs.ring().events_named("no_live_collector").len(), 1);
    }

    #[test]
    fn failover_log_records_remapped_keys_once_and_drains_per_primary() {
        let mut e = egress_pair();
        let mapping = CrcMapping::new();
        let primary = mapping.collector(b"fo-key", 2);

        // Healthy writes are never logged.
        e.craft_report_copy(b"fo-key", &[1u8; 20], 0).unwrap();
        assert_eq!(e.failover_log_len(), 0);

        // Outage: each remapped key is logged exactly once no matter how
        // many reports it generates.
        e.set_collector_liveness(primary, false).unwrap();
        for _ in 0..3 {
            e.craft_report_copy(b"fo-key", &[1u8; 20], 0).unwrap();
        }
        assert_eq!(e.failover_log_len(), 1);
        assert_eq!(e.counters().failovers, 3);
        assert_eq!(e.counters().failover_log_dropped, 0);

        // Draining the wrong primary returns nothing and keeps the log.
        assert!(e.drain_failover_records(1 - primary).is_empty());
        assert_eq!(e.failover_log_len(), 1);

        // Draining the dead primary returns the record and re-arms the
        // key for a future outage.
        let drained = e.drain_failover_records(primary);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].primary, primary);
        assert_eq!(drained[0].target, 1 - primary);
        assert_eq!(drained[0].key, b"fo-key".to_vec());
        assert_eq!(e.failover_log_len(), 0);
        e.craft_report_copy(b"fo-key", &[1u8; 20], 0).unwrap();
        assert_eq!(e.failover_log_len(), 1);
    }

    #[test]
    fn multiwrite_also_fails_over() {
        let mut e = egress_pair();
        let mapping = CrcMapping::new();
        let primary = mapping.collector(b"mw-fo", 2);
        e.set_collector_liveness(primary, false).unwrap();
        let r = e.craft_multiwrite_report(b"mw-fo", &[2u8; 20]).unwrap();
        assert_eq!(r.collector_id, 1 - primary);
        assert_eq!(e.counters().failovers, 1);
    }
}
