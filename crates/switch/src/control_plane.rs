//! The switch control plane (the prototype's "150 lines of Python").
//!
//! Responsibilities, mirroring §6: receive the collector directory from
//! the operator, validate that every region can hold the configured slot
//! geometry, install the collector lookup-table entries, configure the
//! telemetry mirror session, and report the SRAM budget.
//!
//! Since collectors can die, the control plane also runs a
//! [`HealthMonitor`]: an RC probe loop per collector (modeled as a
//! zero-byte READ whose ACK is the aliveness signal), with a
//! consecutive-miss threshold and exponential backoff. Its verdicts are
//! pushed into every switch's per-collector liveness registers so the
//! data plane can fail over without ever involving the slow path
//! per packet.

use dta_core::hash::LivenessMask;
use dta_obs::{Counter, EventKind, Obs};
use dta_rdma::verbs::RemoteEndpoint;

use crate::egress::{DartEgress, SwitchError};
use crate::mirror::{Mirror, MirrorSession};

/// The session ID used for DART telemetry triggers.
pub const DART_MIRROR_SESSION: u16 = 0x0DA;

/// Control-plane driver for one switch.
#[derive(Debug, Default)]
pub struct ControlPlane {
    installed: u32,
}

impl ControlPlane {
    /// Fresh control plane.
    pub fn new() -> ControlPlane {
        ControlPlane::default()
    }

    /// Number of collectors installed so far.
    pub fn installed(&self) -> u32 {
        self.installed
    }

    /// Install the full collector directory into the egress engine.
    /// Collector IDs are assigned densely in directory order, which must
    /// match the operator's ID assignment (they share the directory).
    pub fn install_directory(
        &mut self,
        egress: &mut DartEgress,
        directory: &[RemoteEndpoint],
    ) -> Result<(), SwitchError> {
        for (id, endpoint) in directory.iter().enumerate() {
            egress.install_collector(id as u32, *endpoint)?;
            self.installed += 1;
        }
        Ok(())
    }

    /// Configure the telemetry mirror session with a truncation length
    /// that covers key + value + framing.
    pub fn configure_mirror(&self, mirror: &mut Mirror, max_key_len: usize, value_len: usize) {
        mirror.configure(MirrorSession {
            id: DART_MIRROR_SESSION,
            truncate_len: 1 + max_key_len + value_len,
        });
    }

    /// Total SRAM the collector state consumes on this switch.
    pub fn sram_budget(&self, collectors: u32) -> usize {
        collectors as usize * DartEgress::sram_bytes_per_collector()
    }
}

/// Probe-loop parameters (ticks are the caller's time unit — frames in
/// the simulator, microseconds on real hardware).
///
/// The probe cadence is RTT-adaptive rather than fixed: each ACKed probe
/// contributes an RTT sample to an RFC 6298-style integer EWMA
/// (`srtt ← ⅞·srtt + ⅛·rtt`, `rttvar ← ¾·rttvar + ¼·|srtt − rtt|`), and
/// the next probe fires after `srtt + rtt_dev_mult·rttvar` ticks,
/// clamped to `[min_interval, max_interval]`. A close collector is
/// probed often (fast failure detection); a distant or jittery one is
/// probed gently (no false deaths from ordinary tail latency). All
/// arithmetic is integer and every sample arrives through the caller's
/// probe closure, so the loop stays frame-clocked deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Floor for the adaptive interval; also the cold-start cadence
    /// before the first RTT sample.
    pub min_interval: u64,
    /// Ceiling for the adaptive interval.
    pub max_interval: u64,
    /// Deviation multiplier `k` in `srtt + k·rttvar` (RFC 6298 uses 4).
    pub rtt_dev_mult: u32,
    /// Consecutive unanswered probes before a collector is declared dead.
    pub miss_threshold: u32,
    /// Cap on the exponentially backed-off probe interval for a dead
    /// collector (still probed, so recovery is detected).
    pub backoff_max: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            min_interval: 8,
            max_interval: 64,
            rtt_dev_mult: 4,
            miss_threshold: 3,
            backoff_max: 256,
        }
    }
}

/// Per-collector probe state.
#[derive(Debug, Clone, Copy)]
struct ProbePeer {
    live: bool,
    misses: u32,
    next_probe_at: u64,
    /// Current probe cadence: the adaptive interval while live, the
    /// exponentially backed-off interval while dead.
    backoff: u64,
    /// Smoothed RTT estimate, stored ×8 (0 until the first sample).
    srtt: u64,
    /// Smoothed RTT deviation, stored ×4.
    rttvar: u64,
    /// Whether any RTT sample has arrived yet.
    sampled: bool,
}

impl ProbePeer {
    /// Fold one RTT sample into the estimator and return the new
    /// adaptive probe interval.
    fn absorb_rtt(&mut self, sample: u64, cfg: &ProbeConfig) -> u64 {
        let sample = sample.max(1);
        if self.sampled {
            // Jacobson's scaled integer form: `srtt` is kept ×8 and
            // `rttvar` ×4 so the ⅛ / ¼ gains update without the
            // truncation bias an unscaled `(7·srtt + rtt)/8` has —
            // flooring each step traps the unscaled estimate below the
            // true mean under alternating jitter.
            let delta = sample.abs_diff(self.srtt >> 3);
            self.rttvar = self.rttvar - (self.rttvar >> 2) + delta;
            self.srtt = self.srtt - (self.srtt >> 3) + sample;
        } else {
            self.srtt = sample << 3;
            self.rttvar = (sample / 2) << 2;
            self.sampled = true;
        }
        ((self.srtt >> 3) + u64::from(cfg.rtt_dev_mult) * (self.rttvar >> 2))
            .clamp(cfg.min_interval, cfg.max_interval)
    }
}

/// The control plane's collector health monitor.
///
/// Models the RC probe queue pair the controller keeps to every
/// collector: each probe is a zero-byte READ, and the RC ACK (or its
/// absence after the timeout) is the health signal. `miss_threshold`
/// consecutive timeouts flip the collector to dead; probing continues
/// under exponential backoff so an ACK flips it back to live. Every
/// verdict change is pushed to the switches' liveness registers by the
/// caller (see [`HealthMonitor::tick`]'s return value).
#[derive(Debug)]
pub struct HealthMonitor {
    config: ProbeConfig,
    peers: Vec<ProbePeer>,
    obs: Option<MonitorObs>,
}

/// Cached observability handles for the probe loop.
#[derive(Debug)]
struct MonitorObs {
    obs: Obs,
    probes: Counter,
    misses: Counter,
    flips: Counter,
}

impl HealthMonitor {
    /// Monitor `collectors` peers, all presumed live, first probes due
    /// immediately.
    pub fn new(collectors: u32, config: ProbeConfig) -> HealthMonitor {
        assert!(config.min_interval > 0, "probe interval must be nonzero");
        assert!(
            config.max_interval >= config.min_interval,
            "probe interval clamp must be non-empty"
        );
        HealthMonitor {
            config,
            peers: vec![
                ProbePeer {
                    live: true,
                    misses: 0,
                    next_probe_at: 0,
                    backoff: config.min_interval,
                    srtt: 0,
                    rttvar: 0,
                    sampled: false,
                };
                collectors as usize
            ],
            obs: None,
        }
    }

    /// Attach an observability handle: probe counters under
    /// `dta_monitor_*`, plus `probe_miss` / `probe_backoff` /
    /// `liveness_flip` lifecycle events in the ring.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = Some(MonitorObs {
            probes: obs.counter("dta_monitor_probes_total"),
            misses: obs.counter("dta_monitor_probe_misses_total"),
            flips: obs.counter("dta_monitor_liveness_flips_total"),
            obs: obs.clone(),
        });
    }

    /// The monitor's current liveness verdicts as a mask.
    pub fn mask(&self) -> LivenessMask {
        let mut mask = LivenessMask::all_live(self.peers.len() as u32);
        for (id, peer) in self.peers.iter().enumerate() {
            if !peer.live {
                mask.set_live(id as u32, false);
            }
        }
        mask
    }

    /// The current adaptive probe interval for collector `id` (the
    /// backed-off interval while the peer is dead).
    pub fn probe_interval(&self, id: u32) -> u64 {
        self.peers[id as usize].backoff
    }

    /// Advance the probe loop to time `now`. `probe` performs one probe
    /// exchange (RC READ + ACK wait) and reports the probe's round-trip
    /// time in ticks — `Some(rtt)` if the collector acknowledged in
    /// time, `None` for a timeout. Returns the new mask if any verdict
    /// flipped — the caller must then push it to every switch's liveness
    /// registers (and to the query side).
    pub fn tick(
        &mut self,
        now: u64,
        mut probe: impl FnMut(u32) -> Option<u64>,
    ) -> Option<LivenessMask> {
        let mut changed = false;
        for id in 0..self.peers.len() {
            let due = self.peers[id].next_probe_at <= now;
            if !due {
                continue;
            }
            let rtt = probe(id as u32);
            let cfg = self.config;
            let peer = &mut self.peers[id];
            if let Some(o) = &self.obs {
                o.probes.inc();
            }
            if let Some(sample) = rtt {
                // Any ACK restores full health: reset the miss count and
                // re-adapt the cadence to the fresh RTT sample.
                if !peer.live {
                    peer.live = true;
                    changed = true;
                    if let Some(o) = &self.obs {
                        o.flips.inc();
                        o.obs.event(EventKind::LivenessFlip {
                            collector: id as u8,
                            live: true,
                        });
                    }
                }
                peer.misses = 0;
                peer.backoff = peer.absorb_rtt(sample, &cfg);
            } else {
                peer.misses += 1;
                if let Some(o) = &self.obs {
                    o.misses.inc();
                    o.obs.event(EventKind::ProbeMiss {
                        collector: id as u8,
                        misses: peer.misses,
                    });
                }
                if peer.live && peer.misses >= cfg.miss_threshold {
                    peer.live = false;
                    changed = true;
                    if let Some(o) = &self.obs {
                        o.flips.inc();
                        o.obs.event(EventKind::LivenessFlip {
                            collector: id as u8,
                            live: false,
                        });
                    }
                }
                if !peer.live {
                    // Exponential backoff while dead — don't hammer a
                    // corpse, but keep probing so recovery is noticed.
                    peer.backoff = (peer.backoff * 2).min(cfg.backoff_max);
                    if let Some(o) = &self.obs {
                        o.obs.event(EventKind::ProbeBackoff {
                            collector: id as u8,
                            interval: peer.backoff,
                        });
                    }
                }
            }
            peer.next_probe_at = now + peer.backoff;
        }
        changed.then(|| self.mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egress::EgressConfig;
    use crate::SwitchIdentity;
    use dta_wire::dart::{ChecksumWidth, SlotLayout};
    use dta_wire::roce::Psn;
    use dta_wire::{ethernet, ipv4};

    fn endpoint(i: u8) -> RemoteEndpoint {
        RemoteEndpoint {
            mac: ethernet::Address([0x02, 0, 0, 0, 0, i]),
            ip: ipv4::Address([10, 0, 0, i]),
            qpn: 0x100 + u32::from(i),
            rkey: 0x1000 + u32::from(i),
            base_va: 0x10000,
            region_len: 24 * 1024,
            start_psn: Psn::new(0),
        }
    }

    fn egress(collectors: u32) -> DartEgress {
        DartEgress::new(
            SwitchIdentity::derived(1),
            EgressConfig {
                copies: 2,
                slots: 1024,
                layout: SlotLayout {
                    checksum: ChecksumWidth::B32,
                    value_len: 20,
                },
                collectors,
                udp_src_port: 49152,
                primitive: dta_core::PrimitiveSpec::KeyWrite,
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn directory_installation() {
        let mut cp = ControlPlane::new();
        let mut eg = egress(3);
        cp.install_directory(&mut eg, &[endpoint(1), endpoint(2), endpoint(3)])
            .unwrap();
        assert_eq!(cp.installed(), 3);
        // All three collectors are now reachable.
        for _ in 0..16 {
            assert!(eg.craft_report(b"some-key", &[0u8; 20]).is_ok());
        }
    }

    #[test]
    fn directory_too_large_rejected() {
        let mut cp = ControlPlane::new();
        let mut eg = egress(1);
        let result = cp.install_directory(&mut eg, &[endpoint(1), endpoint(2)]);
        assert!(matches!(result, Err(SwitchError::TableFull)));
    }

    #[test]
    fn sram_budget_scales() {
        let cp = ControlPlane::new();
        // Tens of thousands of collectors remain well within a Tofino's
        // tens of MB of SRAM (§6).
        assert_eq!(cp.sram_budget(10_000), 200_000);
    }

    #[test]
    fn mirror_configuration() {
        let cp = ControlPlane::new();
        let mut mirror = Mirror::new();
        cp.configure_mirror(&mut mirror, 13, 20);
        let clone = mirror
            .clone_to_egress(DART_MIRROR_SESSION, &[0u8; 13], &[0u8; 20])
            .unwrap();
        assert_eq!(clone.payload.len(), 34); // 1 + 13 + 20, untruncated
    }

    fn probe_config() -> ProbeConfig {
        ProbeConfig {
            min_interval: 10,
            max_interval: 80,
            rtt_dev_mult: 2,
            miss_threshold: 3,
            backoff_max: 80,
        }
    }

    #[test]
    fn monitor_stays_quiet_while_all_ack() {
        let mut mon = HealthMonitor::new(3, probe_config());
        for now in (0..200).step_by(5) {
            assert_eq!(mon.tick(now, |_| Some(8)), None);
        }
        assert_eq!(mon.mask().live_count(), 3);
    }

    #[test]
    fn death_needs_consecutive_misses() {
        let mut mon = HealthMonitor::new(2, probe_config());
        // Collector 1 misses twice, acks once, then goes silent: the two
        // early misses must not count toward the threshold.
        let mut calls = 0u32;
        let mut now = 0;
        loop {
            let flipped = mon.tick(now, |id| {
                if id == 0 {
                    return Some(8);
                }
                calls += 1;
                (calls == 3).then_some(8) // acks only its third probe
            });
            if let Some(mask) = flipped {
                assert!(!mask.is_live(1));
                assert!(mask.is_live(0));
                break;
            }
            now += 10;
            assert!(now < 1000, "death never declared");
        }
        // Two misses, one ack (reset), then three more misses: 6 probes.
        assert_eq!(calls, 6);
    }

    #[test]
    fn dead_collector_probed_with_backoff_then_revived() {
        let mut mon = HealthMonitor::new(1, probe_config());
        let mut probes_while_dead = 0u32;
        let mut alive_again_at = None;
        for now in 0..2000 {
            let dead = !mon.mask().is_live(0);
            let revive = now >= 1000;
            if let Some(mask) = mon.tick(now, |_| {
                if dead {
                    probes_while_dead += 1;
                }
                revive.then_some(8)
            }) {
                if mask.is_live(0) {
                    alive_again_at = Some(now);
                    break;
                }
            }
        }
        // Backoff: dead from ~t=30 to ~t=1000, probed at a doubling
        // cadence capped at backoff_max — far fewer than an
        // un-backed-off loop would send, but enough that revival lands
        // within one backoff_max.
        assert!(
            (5..40).contains(&probes_while_dead),
            "dead-collector probes: {probes_while_dead}"
        );
        let revived = alive_again_at.expect("collector revived");
        assert!(
            revived < 1000 + 2 * 80,
            "revival detected too late: t={revived}"
        );
    }

    #[test]
    fn monitor_logs_flips_misses_and_backoff() {
        let obs = Obs::new();
        let mut mon = HealthMonitor::new(1, probe_config());
        mon.attach_obs(&obs);
        // Die (3 consecutive misses), stay dead a while, then revive.
        let mut now = 0;
        loop {
            obs.set_tick(now);
            let acks = now > 200; // collector comes back after t=200
            if let Some(mask) = mon.tick(now, |_| acks.then_some(8)) {
                if mask.is_live(0) {
                    break; // revived
                }
            }
            now += 10;
            assert!(now < 2000, "never revived");
        }
        let reg = obs.registry();
        assert_eq!(
            reg.counter_value("dta_monitor_liveness_flips_total"),
            Some(2)
        );
        assert!(reg.counter_value("dta_monitor_probe_misses_total").unwrap() >= 3);
        assert!(reg.counter_value("dta_monitor_probes_total").unwrap() >= 4);
        // Ring: miss events precede the death flip; a backoff event
        // exists; the final event set contains a live=true flip.
        let flips = obs.ring().events_named("liveness_flip");
        assert_eq!(flips.len(), 2);
        assert!(matches!(
            flips[0].kind,
            EventKind::LivenessFlip { live: false, .. }
        ));
        assert!(matches!(
            flips[1].kind,
            EventKind::LivenessFlip { live: true, .. }
        ));
        assert!(!obs.ring().events_named("probe_backoff").is_empty());
        let misses = obs.ring().events_named("probe_miss");
        assert!(misses.iter().any(|e| e.seq < flips[0].seq));
    }

    #[test]
    fn monitor_mask_pushes_into_egress_registers() {
        let mut mon = HealthMonitor::new(3, probe_config());
        let mut eg = egress(3);
        let mut cp = ControlPlane::new();
        cp.install_directory(&mut eg, &[endpoint(1), endpoint(2), endpoint(3)])
            .unwrap();
        let mut mask = None;
        for now in 0..200 {
            if let Some(m) = mon.tick(now, |id| (id != 2).then_some(8)) {
                mask = Some(m);
                break;
            }
        }
        let mask = mask.expect("collector 2 declared dead");
        for id in 0..3 {
            eg.set_collector_liveness(id, mask.is_live(id)).unwrap();
        }
        assert_eq!(eg.liveness_mask(), mask);
        assert!(!eg.liveness_mask().is_live(2));
    }

    #[test]
    fn adaptive_interval_converges_to_stable_rtt() {
        // Constant RTT: the deviation term decays to zero and the
        // interval settles on exactly srtt (above the clamp floor).
        let mut mon = HealthMonitor::new(1, probe_config());
        for now in 0..5000 {
            mon.tick(now, |_| Some(23));
        }
        assert_eq!(mon.probe_interval(0), 23);
        // A faster collector is probed at the clamp floor, not below it.
        let mut fast = HealthMonitor::new(1, probe_config());
        for now in 0..5000 {
            fast.tick(now, |_| Some(2));
        }
        assert_eq!(fast.probe_interval(0), 10);
    }

    #[test]
    fn adaptive_interval_widens_under_jitter() {
        // Alternating 8/24 RTTs: srtt ≈ 16, rttvar ≈ 8, so the cadence
        // backs off to roughly srtt + 2·rttvar ≈ 32 — strictly gentler
        // than the stable-RTT cadence at the same mean.
        let mut mon = HealthMonitor::new(1, probe_config());
        let mut flip = false;
        for now in 0..5000 {
            mon.tick(now, |_| {
                flip = !flip;
                Some(if flip { 8 } else { 24 })
            });
        }
        let jittery = mon.probe_interval(0);
        assert!(
            (24..=60).contains(&jittery),
            "jittery interval {jittery} outside expected band"
        );
        let mut stable = HealthMonitor::new(1, probe_config());
        for now in 0..5000 {
            stable.tick(now, |_| Some(16));
        }
        assert!(stable.probe_interval(0) < jittery);
    }

    #[test]
    fn adaptive_timeout_converges_under_gilbert_elliott_faults() {
        // A two-state GilbertElliott loss process driven by a
        // deterministic LCG: mostly-lossless Good state, bursty Bad
        // state. Burst lengths stay below the miss threshold almost
        // always, so the estimator must ride through the loss bursts
        // without flapping the peer dead, keep every cadence choice
        // inside the clamp window, and re-converge to the true RTT once
        // the faulty window ends.
        let cfg = probe_config();
        let mut mon = HealthMonitor::new(1, cfg);
        let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rand = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        let mut bad_state = false;
        let mut flaps = 0u32;
        for now in 0..60_000u64 {
            let was_live = mon.mask().is_live(0);
            mon.tick(now, |_| {
                // State transition per probe: Good→Bad 10%, Bad→Good 60%.
                let r = rand() % 100;
                bad_state = if bad_state { r < 40 } else { r < 10 };
                let lost = bad_state && rand() % 100 < 50;
                if lost {
                    return None;
                }
                Some(12 + u64::from(rand() % 7)) // RTT 12..=18
            });
            let interval = mon.probe_interval(0);
            if mon.mask().is_live(0) {
                assert!(
                    (cfg.min_interval..=cfg.max_interval).contains(&interval),
                    "live cadence {interval} escaped the clamp at t={now}"
                );
            } else {
                assert!(interval <= cfg.backoff_max);
            }
            if was_live && !mon.mask().is_live(0) {
                flaps += 1;
            }
        }
        // Bursts occasionally exceed the threshold, but the backoff +
        // instant-revival design keeps flapping rare.
        assert!(flaps < 20, "monitor flapped {flaps} times under GE loss");
        // Faults end: clean RTT samples re-converge the cadence.
        for now in 60_000..70_000u64 {
            mon.tick(now, |_| Some(14));
        }
        assert!(mon.mask().is_live(0));
        assert_eq!(mon.probe_interval(0), 14);
    }
}
