//! The switch control plane (the prototype's "150 lines of Python").
//!
//! Responsibilities, mirroring §6: receive the collector directory from
//! the operator, validate that every region can hold the configured slot
//! geometry, install the collector lookup-table entries, configure the
//! telemetry mirror session, and report the SRAM budget.

use dta_rdma::verbs::RemoteEndpoint;

use crate::egress::{DartEgress, SwitchError};
use crate::mirror::{Mirror, MirrorSession};

/// The session ID used for DART telemetry triggers.
pub const DART_MIRROR_SESSION: u16 = 0x0DA;

/// Control-plane driver for one switch.
#[derive(Debug, Default)]
pub struct ControlPlane {
    installed: u32,
}

impl ControlPlane {
    /// Fresh control plane.
    pub fn new() -> ControlPlane {
        ControlPlane::default()
    }

    /// Number of collectors installed so far.
    pub fn installed(&self) -> u32 {
        self.installed
    }

    /// Install the full collector directory into the egress engine.
    /// Collector IDs are assigned densely in directory order, which must
    /// match the operator's ID assignment (they share the directory).
    pub fn install_directory(
        &mut self,
        egress: &mut DartEgress,
        directory: &[RemoteEndpoint],
    ) -> Result<(), SwitchError> {
        for (id, endpoint) in directory.iter().enumerate() {
            egress.install_collector(id as u32, *endpoint)?;
            self.installed += 1;
        }
        Ok(())
    }

    /// Configure the telemetry mirror session with a truncation length
    /// that covers key + value + framing.
    pub fn configure_mirror(&self, mirror: &mut Mirror, max_key_len: usize, value_len: usize) {
        mirror.configure(MirrorSession {
            id: DART_MIRROR_SESSION,
            truncate_len: 1 + max_key_len + value_len,
        });
    }

    /// Total SRAM the collector state consumes on this switch.
    pub fn sram_budget(&self, collectors: u32) -> usize {
        collectors as usize * DartEgress::sram_bytes_per_collector()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egress::EgressConfig;
    use crate::SwitchIdentity;
    use dta_wire::dart::{ChecksumWidth, SlotLayout};
    use dta_wire::roce::Psn;
    use dta_wire::{ethernet, ipv4};

    fn endpoint(i: u8) -> RemoteEndpoint {
        RemoteEndpoint {
            mac: ethernet::Address([0x02, 0, 0, 0, 0, i]),
            ip: ipv4::Address([10, 0, 0, i]),
            qpn: 0x100 + u32::from(i),
            rkey: 0x1000 + u32::from(i),
            base_va: 0x10000,
            region_len: 24 * 1024,
            start_psn: Psn::new(0),
        }
    }

    fn egress(collectors: u32) -> DartEgress {
        DartEgress::new(
            SwitchIdentity::derived(1),
            EgressConfig {
                copies: 2,
                slots: 1024,
                layout: SlotLayout {
                    checksum: ChecksumWidth::B32,
                    value_len: 20,
                },
                collectors,
                udp_src_port: 49152,
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn directory_installation() {
        let mut cp = ControlPlane::new();
        let mut eg = egress(3);
        cp.install_directory(&mut eg, &[endpoint(1), endpoint(2), endpoint(3)])
            .unwrap();
        assert_eq!(cp.installed(), 3);
        // All three collectors are now reachable.
        for _ in 0..16 {
            assert!(eg.craft_report(b"some-key", &[0u8; 20]).is_ok());
        }
    }

    #[test]
    fn directory_too_large_rejected() {
        let mut cp = ControlPlane::new();
        let mut eg = egress(1);
        let result = cp.install_directory(&mut eg, &[endpoint(1), endpoint(2)]);
        assert!(matches!(result, Err(SwitchError::TableFull)));
    }

    #[test]
    fn sram_budget_scales() {
        let cp = ControlPlane::new();
        // Tens of thousands of collectors remain well within a Tofino's
        // tens of MB of SRAM (§6).
        assert_eq!(cp.sram_budget(10_000), 200_000);
    }

    #[test]
    fn mirror_configuration() {
        let cp = ControlPlane::new();
        let mut mirror = Mirror::new();
        cp.configure_mirror(&mut mirror, 13, 20);
        let clone = mirror
            .clone_to_egress(DART_MIRROR_SESSION, &[0u8; 13], &[0u8; 20])
            .unwrap();
        assert_eq!(clone.payload.len(), 34); // 1 + 13 + 20, untruncated
    }
}
