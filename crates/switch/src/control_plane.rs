//! The switch control plane (the prototype's "150 lines of Python").
//!
//! Responsibilities, mirroring §6: receive the collector directory from
//! the operator, validate that every region can hold the configured slot
//! geometry, install the collector lookup-table entries, configure the
//! telemetry mirror session, and report the SRAM budget.
//!
//! Since collectors can die, the control plane also runs a
//! [`HealthMonitor`]: an RC probe loop per collector (modeled as a
//! zero-byte READ whose ACK is the aliveness signal), with a
//! consecutive-miss threshold and exponential backoff. Its verdicts are
//! pushed into every switch's per-collector liveness registers so the
//! data plane can fail over without ever involving the slow path
//! per packet.

use dta_core::hash::LivenessMask;
use dta_obs::{Counter, EventKind, Obs};
use dta_rdma::verbs::RemoteEndpoint;

use crate::egress::{DartEgress, SwitchError};
use crate::mirror::{Mirror, MirrorSession};

/// The session ID used for DART telemetry triggers.
pub const DART_MIRROR_SESSION: u16 = 0x0DA;

/// Control-plane driver for one switch.
#[derive(Debug, Default)]
pub struct ControlPlane {
    installed: u32,
}

impl ControlPlane {
    /// Fresh control plane.
    pub fn new() -> ControlPlane {
        ControlPlane::default()
    }

    /// Number of collectors installed so far.
    pub fn installed(&self) -> u32 {
        self.installed
    }

    /// Install the full collector directory into the egress engine.
    /// Collector IDs are assigned densely in directory order, which must
    /// match the operator's ID assignment (they share the directory).
    pub fn install_directory(
        &mut self,
        egress: &mut DartEgress,
        directory: &[RemoteEndpoint],
    ) -> Result<(), SwitchError> {
        for (id, endpoint) in directory.iter().enumerate() {
            egress.install_collector(id as u32, *endpoint)?;
            self.installed += 1;
        }
        Ok(())
    }

    /// Configure the telemetry mirror session with a truncation length
    /// that covers key + value + framing.
    pub fn configure_mirror(&self, mirror: &mut Mirror, max_key_len: usize, value_len: usize) {
        mirror.configure(MirrorSession {
            id: DART_MIRROR_SESSION,
            truncate_len: 1 + max_key_len + value_len,
        });
    }

    /// Total SRAM the collector state consumes on this switch.
    pub fn sram_budget(&self, collectors: u32) -> usize {
        collectors as usize * DartEgress::sram_bytes_per_collector()
    }
}

/// Probe-loop parameters (ticks are the caller's time unit — frames in
/// the simulator, microseconds on real hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Ticks between probes to a responsive collector.
    pub interval: u64,
    /// Consecutive unanswered probes before a collector is declared dead.
    pub miss_threshold: u32,
    /// Cap on the exponentially backed-off probe interval for a dead
    /// collector (still probed, so recovery is detected).
    pub backoff_max: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            interval: 16,
            miss_threshold: 3,
            backoff_max: 256,
        }
    }
}

/// Per-collector probe state.
#[derive(Debug, Clone, Copy)]
struct ProbePeer {
    live: bool,
    misses: u32,
    next_probe_at: u64,
    backoff: u64,
}

/// The control plane's collector health monitor.
///
/// Models the RC probe queue pair the controller keeps to every
/// collector: each probe is a zero-byte READ, and the RC ACK (or its
/// absence after the timeout) is the health signal. `miss_threshold`
/// consecutive timeouts flip the collector to dead; probing continues
/// under exponential backoff so an ACK flips it back to live. Every
/// verdict change is pushed to the switches' liveness registers by the
/// caller (see [`HealthMonitor::tick`]'s return value).
#[derive(Debug)]
pub struct HealthMonitor {
    config: ProbeConfig,
    peers: Vec<ProbePeer>,
    obs: Option<MonitorObs>,
}

/// Cached observability handles for the probe loop.
#[derive(Debug)]
struct MonitorObs {
    obs: Obs,
    probes: Counter,
    misses: Counter,
    flips: Counter,
}

impl HealthMonitor {
    /// Monitor `collectors` peers, all presumed live, first probes due
    /// immediately.
    pub fn new(collectors: u32, config: ProbeConfig) -> HealthMonitor {
        assert!(config.interval > 0, "probe interval must be nonzero");
        HealthMonitor {
            config,
            peers: vec![
                ProbePeer {
                    live: true,
                    misses: 0,
                    next_probe_at: 0,
                    backoff: config.interval,
                };
                collectors as usize
            ],
            obs: None,
        }
    }

    /// Attach an observability handle: probe counters under
    /// `dta_monitor_*`, plus `probe_miss` / `probe_backoff` /
    /// `liveness_flip` lifecycle events in the ring.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = Some(MonitorObs {
            probes: obs.counter("dta_monitor_probes_total"),
            misses: obs.counter("dta_monitor_probe_misses_total"),
            flips: obs.counter("dta_monitor_liveness_flips_total"),
            obs: obs.clone(),
        });
    }

    /// The monitor's current liveness verdicts as a mask.
    pub fn mask(&self) -> LivenessMask {
        let mut mask = LivenessMask::all_live(self.peers.len() as u32);
        for (id, peer) in self.peers.iter().enumerate() {
            if !peer.live {
                mask.set_live(id as u32, false);
            }
        }
        mask
    }

    /// Advance the probe loop to time `now`. `probe` performs one probe
    /// exchange (RC READ + ACK wait) and reports whether the collector
    /// acknowledged in time. Returns the new mask if any verdict flipped
    /// — the caller must then push it to every switch's liveness
    /// registers (and to the query side).
    pub fn tick(&mut self, now: u64, mut probe: impl FnMut(u32) -> bool) -> Option<LivenessMask> {
        let mut changed = false;
        for id in 0..self.peers.len() {
            let due = self.peers[id].next_probe_at <= now;
            if !due {
                continue;
            }
            let acked = probe(id as u32);
            let cfg = self.config;
            let peer = &mut self.peers[id];
            if let Some(o) = &self.obs {
                o.probes.inc();
            }
            if acked {
                // Any ACK restores full health: reset the miss count and
                // the backed-off cadence.
                if !peer.live {
                    peer.live = true;
                    changed = true;
                    if let Some(o) = &self.obs {
                        o.flips.inc();
                        o.obs.event(EventKind::LivenessFlip {
                            collector: id as u8,
                            live: true,
                        });
                    }
                }
                peer.misses = 0;
                peer.backoff = cfg.interval;
            } else {
                peer.misses += 1;
                if let Some(o) = &self.obs {
                    o.misses.inc();
                    o.obs.event(EventKind::ProbeMiss {
                        collector: id as u8,
                        misses: peer.misses,
                    });
                }
                if peer.live && peer.misses >= cfg.miss_threshold {
                    peer.live = false;
                    changed = true;
                    if let Some(o) = &self.obs {
                        o.flips.inc();
                        o.obs.event(EventKind::LivenessFlip {
                            collector: id as u8,
                            live: false,
                        });
                    }
                }
                if !peer.live {
                    // Exponential backoff while dead — don't hammer a
                    // corpse, but keep probing so recovery is noticed.
                    peer.backoff = (peer.backoff * 2).min(cfg.backoff_max);
                    if let Some(o) = &self.obs {
                        o.obs.event(EventKind::ProbeBackoff {
                            collector: id as u8,
                            interval: peer.backoff,
                        });
                    }
                }
            }
            peer.next_probe_at = now + peer.backoff;
        }
        changed.then(|| self.mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egress::EgressConfig;
    use crate::SwitchIdentity;
    use dta_wire::dart::{ChecksumWidth, SlotLayout};
    use dta_wire::roce::Psn;
    use dta_wire::{ethernet, ipv4};

    fn endpoint(i: u8) -> RemoteEndpoint {
        RemoteEndpoint {
            mac: ethernet::Address([0x02, 0, 0, 0, 0, i]),
            ip: ipv4::Address([10, 0, 0, i]),
            qpn: 0x100 + u32::from(i),
            rkey: 0x1000 + u32::from(i),
            base_va: 0x10000,
            region_len: 24 * 1024,
            start_psn: Psn::new(0),
        }
    }

    fn egress(collectors: u32) -> DartEgress {
        DartEgress::new(
            SwitchIdentity::derived(1),
            EgressConfig {
                copies: 2,
                slots: 1024,
                layout: SlotLayout {
                    checksum: ChecksumWidth::B32,
                    value_len: 20,
                },
                collectors,
                udp_src_port: 49152,
                primitive: dta_core::PrimitiveSpec::KeyWrite,
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn directory_installation() {
        let mut cp = ControlPlane::new();
        let mut eg = egress(3);
        cp.install_directory(&mut eg, &[endpoint(1), endpoint(2), endpoint(3)])
            .unwrap();
        assert_eq!(cp.installed(), 3);
        // All three collectors are now reachable.
        for _ in 0..16 {
            assert!(eg.craft_report(b"some-key", &[0u8; 20]).is_ok());
        }
    }

    #[test]
    fn directory_too_large_rejected() {
        let mut cp = ControlPlane::new();
        let mut eg = egress(1);
        let result = cp.install_directory(&mut eg, &[endpoint(1), endpoint(2)]);
        assert!(matches!(result, Err(SwitchError::TableFull)));
    }

    #[test]
    fn sram_budget_scales() {
        let cp = ControlPlane::new();
        // Tens of thousands of collectors remain well within a Tofino's
        // tens of MB of SRAM (§6).
        assert_eq!(cp.sram_budget(10_000), 200_000);
    }

    #[test]
    fn mirror_configuration() {
        let cp = ControlPlane::new();
        let mut mirror = Mirror::new();
        cp.configure_mirror(&mut mirror, 13, 20);
        let clone = mirror
            .clone_to_egress(DART_MIRROR_SESSION, &[0u8; 13], &[0u8; 20])
            .unwrap();
        assert_eq!(clone.payload.len(), 34); // 1 + 13 + 20, untruncated
    }

    fn probe_config() -> ProbeConfig {
        ProbeConfig {
            interval: 10,
            miss_threshold: 3,
            backoff_max: 80,
        }
    }

    #[test]
    fn monitor_stays_quiet_while_all_ack() {
        let mut mon = HealthMonitor::new(3, probe_config());
        for now in (0..200).step_by(5) {
            assert_eq!(mon.tick(now, |_| true), None);
        }
        assert_eq!(mon.mask().live_count(), 3);
    }

    #[test]
    fn death_needs_consecutive_misses() {
        let mut mon = HealthMonitor::new(2, probe_config());
        // Collector 1 misses twice, acks once, then goes silent: the two
        // early misses must not count toward the threshold.
        let mut calls = 0u32;
        let mut now = 0;
        loop {
            let flipped = mon.tick(now, |id| {
                if id == 0 {
                    return true;
                }
                calls += 1;
                calls == 3 // acks only its third probe
            });
            if let Some(mask) = flipped {
                assert!(!mask.is_live(1));
                assert!(mask.is_live(0));
                break;
            }
            now += 10;
            assert!(now < 1000, "death never declared");
        }
        // Two misses, one ack (reset), then three more misses: 6 probes.
        assert_eq!(calls, 6);
    }

    #[test]
    fn dead_collector_probed_with_backoff_then_revived() {
        let mut mon = HealthMonitor::new(1, probe_config());
        let mut probes_while_dead = 0u32;
        let mut alive_again_at = None;
        for now in 0..2000 {
            let dead = !mon.mask().is_live(0);
            let revive = now >= 1000;
            if let Some(mask) = mon.tick(now, |_| {
                if dead {
                    probes_while_dead += 1;
                }
                revive
            }) {
                if mask.is_live(0) {
                    alive_again_at = Some(now);
                    break;
                }
            }
        }
        // Backoff: dead from ~t=30 to ~t=1000, probed at 20,40,80,80...
        // cadence — far fewer than the ~97 an un-backed-off loop would
        // send, but enough that revival lands within one backoff_max.
        assert!(
            (5..40).contains(&probes_while_dead),
            "dead-collector probes: {probes_while_dead}"
        );
        let revived = alive_again_at.expect("collector revived");
        assert!(
            revived < 1000 + 2 * 80,
            "revival detected too late: t={revived}"
        );
    }

    #[test]
    fn monitor_logs_flips_misses_and_backoff() {
        let obs = Obs::new();
        let mut mon = HealthMonitor::new(1, probe_config());
        mon.attach_obs(&obs);
        // Die (3 consecutive misses), stay dead a while, then revive.
        let mut now = 0;
        loop {
            obs.set_tick(now);
            let acks = now > 200; // collector comes back after t=200
            if let Some(mask) = mon.tick(now, |_| acks) {
                if mask.is_live(0) {
                    break; // revived
                }
            }
            now += 10;
            assert!(now < 2000, "never revived");
        }
        let reg = obs.registry();
        assert_eq!(
            reg.counter_value("dta_monitor_liveness_flips_total"),
            Some(2)
        );
        assert!(reg.counter_value("dta_monitor_probe_misses_total").unwrap() >= 3);
        assert!(reg.counter_value("dta_monitor_probes_total").unwrap() >= 4);
        // Ring: miss events precede the death flip; a backoff event
        // exists; the final event set contains a live=true flip.
        let flips = obs.ring().events_named("liveness_flip");
        assert_eq!(flips.len(), 2);
        assert!(matches!(
            flips[0].kind,
            EventKind::LivenessFlip { live: false, .. }
        ));
        assert!(matches!(
            flips[1].kind,
            EventKind::LivenessFlip { live: true, .. }
        ));
        assert!(!obs.ring().events_named("probe_backoff").is_empty());
        let misses = obs.ring().events_named("probe_miss");
        assert!(misses.iter().any(|e| e.seq < flips[0].seq));
    }

    #[test]
    fn monitor_mask_pushes_into_egress_registers() {
        let mut mon = HealthMonitor::new(3, probe_config());
        let mut eg = egress(3);
        let mut cp = ControlPlane::new();
        cp.install_directory(&mut eg, &[endpoint(1), endpoint(2), endpoint(3)])
            .unwrap();
        let mut mask = None;
        for now in 0..200 {
            if let Some(m) = mon.tick(now, |id| id != 2) {
                mask = Some(m);
                break;
            }
        }
        let mask = mask.expect("collector 2 declared dead");
        for id in 0..3 {
            eg.set_collector_liveness(id, mask.is_live(id)).unwrap();
        }
        assert_eq!(eg.liveness_mask(), mask);
        assert!(!eg.liveness_mask().is_live(2));
    }
}
