//! Property-based tests for the switch pipeline: every crafted frame,
//! for arbitrary keys/values, must be a valid RoCEv2 packet whose fields
//! round-trip to the inputs.

use proptest::prelude::*;

use dta_core::hash::{AddressMapping, CrcMapping};
use dta_rdma::verbs::RemoteEndpoint;
use dta_switch::egress::{DartEgress, EgressConfig};
use dta_switch::event_filter::EventFilter;
use dta_switch::mirror::{decode_trigger, encode_trigger};
use dta_switch::SwitchIdentity;
use dta_wire::dart::{ChecksumWidth, SlotLayout};
use dta_wire::roce::{self, Psn, RoceRepr};
use dta_wire::{ethernet, ipv4, udp};

const SLOTS: u64 = 1 << 12;

fn endpoint() -> RemoteEndpoint {
    RemoteEndpoint {
        mac: ethernet::Address([2, 0, 0, 0, 0, 2]),
        ip: ipv4::Address([10, 0, 0, 2]),
        qpn: 0x100,
        rkey: 0x1000,
        base_va: 0x4000_0000,
        region_len: SLOTS * 24,
        start_psn: Psn::new(0),
    }
}

fn egress(copies: u8, seed: u64) -> DartEgress {
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(1),
        EgressConfig {
            copies,
            slots: SLOTS,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: 20,
            },
            collectors: 1,
            udp_src_port: 49152,
            primitive: dta_core::PrimitiveSpec::KeyWrite,
        },
        seed,
    )
    .unwrap();
    egress.install_collector(0, endpoint()).unwrap();
    egress
}

proptest! {
    /// Any crafted report is a fully valid frame: parseable at every
    /// layer, iCRC-verified, addressed at the right slot, carrying the
    /// right checksum and value.
    #[test]
    fn crafted_reports_are_always_valid(
        key in proptest::collection::vec(any::<u8>(), 1..=64),
        value in proptest::collection::vec(any::<u8>(), 20..=20),
        copy in 0u8..4,
        copies in 1u8..=4,
        seed in any::<u64>(),
    ) {
        let copy = copy % copies;
        let mut egress = egress(copies, seed);
        let report = egress.craft_report_copy(&key, &value, copy).unwrap();

        let eth = ethernet::Frame::new_checked(&report.frame[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        let dgram = udp::Datagram::new_checked(ip.payload()).unwrap();
        prop_assert_eq!(dgram.dst_port(), udp::ROCEV2_PORT);
        let udp_bytes = ip.payload();
        roce::icrc::verify(
            ip.header_bytes(),
            &udp_bytes[..udp::HEADER_LEN],
            dgram.payload(),
        )
        .unwrap();

        let body = &dgram.payload()[..dgram.payload().len() - roce::ICRC_LEN];
        let mapping = CrcMapping::new();
        match RoceRepr::parse(body).unwrap() {
            RoceRepr::Write { bth, reth, payload } => {
                prop_assert_eq!(bth.dest_qp, 0x100);
                prop_assert_eq!(reth.rkey, 0x1000);
                // Slot address matches the shared mapping.
                let slot = mapping.slot(&key, copy, SLOTS);
                prop_assert_eq!(reth.virtual_addr, 0x4000_0000 + slot * 24);
                // Payload = truncated checksum ‖ value.
                let layout = SlotLayout { checksum: ChecksumWidth::B32, value_len: 20 };
                let (stored, stored_value) = layout.decode(&payload).unwrap();
                prop_assert_eq!(stored, mapping.key_checksum(&key));
                prop_assert_eq!(stored_value, &value[..]);
            }
            other => prop_assert!(false, "expected WRITE, got {other:?}"),
        }
    }

    /// PSNs increase by exactly one per crafted report, whatever the mix
    /// of keys.
    #[test]
    fn psn_strictly_sequential(keys in proptest::collection::vec(any::<u64>(), 1..32)) {
        let mut egress = egress(2, 7);
        for (i, key) in keys.iter().enumerate() {
            let report = egress.craft_report(&key.to_le_bytes(), &[0u8; 20]).unwrap();
            prop_assert_eq!(report.psn, Psn::new(i as u32));
        }
    }

    /// Mirror trigger framing round-trips for arbitrary key/value pairs.
    #[test]
    fn mirror_trigger_roundtrip(key in proptest::collection::vec(any::<u8>(), 0..=255),
                                value in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = encode_trigger(&key, &value).unwrap();
        let (k, v) = decode_trigger(&encoded).unwrap();
        prop_assert_eq!(k, &key[..]);
        prop_assert_eq!(v, &value[..]);
    }

    /// The event filter never suppresses a genuine change: feeding an
    /// alternating sequence of values for one key reports every time the
    /// value differs from the stored digest.
    #[test]
    fn event_filter_never_misses_changes(values in proptest::collection::vec(0u8..4, 1..32)) {
        let mut filter = EventFilter::new(64);
        let mut last: Option<u8> = None;
        for &v in &values {
            let reported = filter.should_report(b"the-key", &[v; 8]);
            match last {
                Some(prev) if prev == v => prop_assert!(!reported, "duplicate reported"),
                _ => prop_assert!(reported, "change suppressed"),
            }
            last = Some(v);
        }
    }
}
