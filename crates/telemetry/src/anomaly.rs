//! Flow-anomaly telemetry (Table 1, row 5; NetSeer-style flow events).
//!
//! Switches detect per-flow events — drops, path loops, congestion,
//! blackholes — and report them keyed by `(flow 5-tuple, anomaly ID)` so
//! each anomaly type of a flow is independently queryable.

use dta_wire::{Error, FiveTuple, Result};

use crate::event::{read_array, tag, Backend};

/// Anomaly types a switch data plane can detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Packet drop (with a drop-reason code in the event data).
    Drop,
    /// Forwarding loop detected (TTL pattern).
    Loop,
    /// Queue build-up / congestion onset.
    Congestion,
    /// Traffic to a route that blackholes.
    Blackhole,
    /// Path change (ECMP reshuffle or failover).
    PathChange,
}

impl AnomalyKind {
    /// Stable wire ID.
    pub fn to_u16(self) -> u16 {
        match self {
            AnomalyKind::Drop => 1,
            AnomalyKind::Loop => 2,
            AnomalyKind::Congestion => 3,
            AnomalyKind::Blackhole => 4,
            AnomalyKind::PathChange => 5,
        }
    }

    /// Decode a wire ID.
    pub fn from_u16(raw: u16) -> Result<AnomalyKind> {
        match raw {
            1 => Ok(AnomalyKind::Drop),
            2 => Ok(AnomalyKind::Loop),
            3 => Ok(AnomalyKind::Congestion),
            4 => Ok(AnomalyKind::Blackhole),
            5 => Ok(AnomalyKind::PathChange),
            _ => Err(Error::Malformed),
        }
    }
}

/// An anomaly key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnomalyKey {
    /// The affected flow.
    pub flow: FiveTuple,
    /// The anomaly type.
    pub kind: AnomalyKind,
}

/// The event payload: when and what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnomalyEvent {
    /// Event timestamp (ns, truncated).
    pub timestamp: u32,
    /// Switch that observed the event.
    pub switch_id: u32,
    /// Event-specific data (drop reason, loop TTL, queue depth, …).
    pub event_data: u64,
    /// Occurrences aggregated into this report.
    pub count: u32,
}

/// The flow-anomaly backend.
pub struct AnomalyBackend;

impl Backend for AnomalyBackend {
    type Key = AnomalyKey;
    type Value = AnomalyEvent;

    const VALUE_LEN: usize = 20;

    fn encode_key(key: &AnomalyKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + FiveTuple::WIRE_LEN + 2);
        out.push(tag::ANOMALY);
        out.extend_from_slice(&key.flow.to_bytes());
        out.extend_from_slice(&key.kind.to_u16().to_be_bytes());
        out
    }

    fn encode_value(value: &AnomalyEvent) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::VALUE_LEN);
        out.extend_from_slice(&value.timestamp.to_be_bytes());
        out.extend_from_slice(&value.switch_id.to_be_bytes());
        out.extend_from_slice(&value.event_data.to_be_bytes());
        out.extend_from_slice(&value.count.to_be_bytes());
        out
    }

    fn decode_value(bytes: &[u8]) -> Result<AnomalyEvent> {
        Ok(AnomalyEvent {
            timestamp: u32::from_be_bytes(read_array::<4>(bytes, 0)?),
            switch_id: u32::from_be_bytes(read_array::<4>(bytes, 4)?),
            event_data: u64::from_be_bytes(read_array::<8>(bytes, 8)?),
            count: u32::from_be_bytes(read_array::<4>(bytes, 16)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_wire::ipv4;

    fn key(kind: AnomalyKind) -> AnomalyKey {
        AnomalyKey {
            flow: FiveTuple {
                src_ip: ipv4::Address([10, 0, 0, 1]),
                dst_ip: ipv4::Address([10, 0, 1, 9]),
                src_port: 40000,
                dst_port: 80,
                protocol: 6,
            },
            kind,
        }
    }

    #[test]
    fn kind_roundtrip() {
        for kind in [
            AnomalyKind::Drop,
            AnomalyKind::Loop,
            AnomalyKind::Congestion,
            AnomalyKind::Blackhole,
            AnomalyKind::PathChange,
        ] {
            assert_eq!(AnomalyKind::from_u16(kind.to_u16()).unwrap(), kind);
        }
        assert!(AnomalyKind::from_u16(99).is_err());
    }

    #[test]
    fn value_roundtrip() {
        let v = AnomalyEvent {
            timestamp: 777,
            switch_id: 3,
            event_data: 0xDEAD_BEEF_CAFE,
            count: 12,
        };
        let bytes = AnomalyBackend::encode_value(&v);
        assert_eq!(bytes.len(), AnomalyBackend::VALUE_LEN);
        assert_eq!(AnomalyBackend::decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn same_flow_different_anomalies_have_distinct_keys() {
        let a = AnomalyBackend::encode_key(&key(AnomalyKind::Drop));
        let b = AnomalyBackend::encode_key(&key(AnomalyKind::Loop));
        assert_ne!(a, b);
        assert_eq!(a[0], tag::ANOMALY);
    }
}
