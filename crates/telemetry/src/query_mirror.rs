//! Query-based mirroring (Table 1, row 3; Everflow-style).
//!
//! The operator installs match-and-mirror queries in switches; each
//! query's running answer is reported keyed by the query ID.

use dta_wire::Result;

use crate::event::{read_array, tag, Backend};

/// A query answer: a counter plus the last-match context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryAnswer {
    /// Packets matched so far.
    pub match_count: u64,
    /// Timestamp of the most recent match (ns, truncated).
    pub last_match_ts: u32,
    /// Switch that reported.
    pub switch_id: u32,
    /// Last matched packet length.
    pub last_pkt_len: u16,
    /// Reserved.
    pub flags: u16,
}

/// The query-mirroring backend.
pub struct QueryMirrorBackend;

impl Backend for QueryMirrorBackend {
    type Key = u32; // query ID
    type Value = QueryAnswer;

    const VALUE_LEN: usize = 20;

    fn encode_key(query_id: &u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(5);
        out.push(tag::QUERY_MIRROR);
        out.extend_from_slice(&query_id.to_be_bytes());
        out
    }

    fn encode_value(value: &QueryAnswer) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::VALUE_LEN);
        out.extend_from_slice(&value.match_count.to_be_bytes());
        out.extend_from_slice(&value.last_match_ts.to_be_bytes());
        out.extend_from_slice(&value.switch_id.to_be_bytes());
        out.extend_from_slice(&value.last_pkt_len.to_be_bytes());
        out.extend_from_slice(&value.flags.to_be_bytes());
        out
    }

    fn decode_value(bytes: &[u8]) -> Result<QueryAnswer> {
        Ok(QueryAnswer {
            match_count: u64::from_be_bytes(read_array::<8>(bytes, 0)?),
            last_match_ts: u32::from_be_bytes(read_array::<4>(bytes, 8)?),
            switch_id: u32::from_be_bytes(read_array::<4>(bytes, 12)?),
            last_pkt_len: u16::from_be_bytes(read_array::<2>(bytes, 16)?),
            flags: u16::from_be_bytes(read_array::<2>(bytes, 18)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = QueryAnswer {
            match_count: 123_456_789_000,
            last_match_ts: 42,
            switch_id: 7,
            last_pkt_len: 1500,
            flags: 0,
        };
        let bytes = QueryMirrorBackend::encode_value(&v);
        assert_eq!(bytes.len(), QueryMirrorBackend::VALUE_LEN);
        assert_eq!(QueryMirrorBackend::decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn key_tag_and_length() {
        let key = QueryMirrorBackend::encode_key(&0xDEAD);
        assert_eq!(key[0], tag::QUERY_MIRROR);
        assert_eq!(key.len(), 5);
    }

    #[test]
    fn truncated_rejected() {
        assert!(QueryMirrorBackend::decode_value(&[0u8; 19]).is_err());
    }
}
