//! Rich in-band INT: configurable per-hop instruction bitmaps.
//!
//! Path tracing ([`crate::int_path`]) is the NODE_ID-only INT profile;
//! operators usually also want hop latency, queue occupancy or
//! timestamps. [`RichPathBackend`] carries any instruction set from
//! [`dta_wire::int::Instructions`] — the value length follows
//! `hops × words(instructions) × 4`, so a deployment picks its profile
//! once and sizes collector slots accordingly.
//!
//! Unlike the fixed-profile backends, this one is configured at runtime,
//! so it is a struct (not the [`crate::event::Backend`] trait, whose
//! value length is a compile-time constant).

use dta_wire::int::{Instructions, RichIntStack};
use dta_wire::{FiveTuple, Result};

use crate::event::{tag, TelemetryRecord};

/// A rich INT backend for a chosen instruction profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RichPathBackend {
    instructions: Instructions,
    hops: usize,
}

impl RichPathBackend {
    /// Build a backend carrying `instructions` for up to `hops` hops.
    pub fn new(instructions: Instructions, hops: usize) -> RichPathBackend {
        RichPathBackend { instructions, hops }
    }

    /// The paper's Figure 4 profile: 5 hops of node IDs (20-byte
    /// values) — bit-compatible with [`crate::int_path::IntPathBackend`].
    pub fn path_tracing() -> RichPathBackend {
        RichPathBackend::new(Instructions::path_tracing(), 5)
    }

    /// A latency-diagnosis profile: node ID + hop latency + queue
    /// occupancy per hop.
    pub fn latency_profile(hops: usize) -> RichPathBackend {
        RichPathBackend::new(
            Instructions::NODE_ID
                .with(Instructions::HOP_LATENCY)
                .with(Instructions::QUEUE_OCCUPANCY),
            hops,
        )
    }

    /// The instruction bitmap.
    pub fn instructions(&self) -> Instructions {
        self.instructions
    }

    /// Value length in bytes (what the DART slot layout must be
    /// configured with).
    pub fn value_len(&self) -> usize {
        self.hops * self.instructions.bytes_per_hop()
    }

    /// Encode the key (same domain tag as plain in-band INT — rich and
    /// plain profiles are alternative value encodings of the same key
    /// space and must not be mixed in one region).
    pub fn encode_key(&self, flow: &FiveTuple) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + FiveTuple::WIRE_LEN);
        out.push(tag::IN_BAND);
        out.extend_from_slice(&flow.to_bytes());
        out
    }

    /// Encode a stack (padded to the configured hop count).
    pub fn encode_value(&self, stack: &RichIntStack) -> Result<Vec<u8>> {
        debug_assert_eq!(stack.instructions(), self.instructions);
        stack.to_padded_value_bytes(self.hops)
    }

    /// Decode a value.
    pub fn decode_value(&self, bytes: &[u8]) -> Result<RichIntStack> {
        RichIntStack::from_value_bytes(self.instructions, bytes)
    }

    /// Bundle a record.
    pub fn record(&self, flow: &FiveTuple, stack: &RichIntStack) -> Result<TelemetryRecord> {
        Ok(TelemetryRecord {
            key: self.encode_key(flow),
            value: self.encode_value(stack)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_wire::int::RichHopMetadata;
    use dta_wire::ipv4;

    fn flow() -> FiveTuple {
        FiveTuple {
            src_ip: ipv4::Address([10, 0, 0, 1]),
            dst_ip: ipv4::Address([10, 0, 1, 9]),
            src_port: 40000,
            dst_port: 80,
            protocol: 6,
        }
    }

    fn hop(id: u32) -> RichHopMetadata {
        RichHopMetadata {
            switch_id: id,
            hop_latency: 100 * id,
            queue_occupancy: id,
            ..RichHopMetadata::default()
        }
    }

    #[test]
    fn latency_profile_roundtrip() {
        let backend = RichPathBackend::latency_profile(5);
        assert_eq!(backend.value_len(), 5 * 12);

        let mut stack = RichIntStack::new(backend.instructions());
        for id in [1u32, 2, 3, 4, 5] {
            stack.push(hop(id)).unwrap();
        }
        let record = backend.record(&flow(), &stack).unwrap();
        assert_eq!(record.value.len(), backend.value_len());

        let decoded = backend.decode_value(&record.value).unwrap();
        assert_eq!(decoded.hops().len(), 5);
        assert_eq!(decoded.hops()[2].hop_latency, 300);
        assert_eq!(decoded.hops()[4].queue_occupancy, 5);
    }

    #[test]
    fn path_tracing_profile_matches_plain_backend() {
        use crate::event::Backend;
        use crate::int_path::IntPathBackend;
        use dta_wire::int::{HopMetadata, IntStack};

        let rich = RichPathBackend::path_tracing();
        let mut rich_stack = RichIntStack::new(rich.instructions());
        let mut plain_stack = IntStack::new();
        for id in [7u32, 8, 9] {
            rich_stack.push(hop(id)).unwrap();
            plain_stack.push(HopMetadata { switch_id: id }).unwrap();
        }
        // Byte-compatible values and identical keys.
        assert_eq!(
            rich.encode_value(&rich_stack).unwrap(),
            IntPathBackend::encode_value(&plain_stack)
        );
        assert_eq!(
            rich.encode_key(&flow()),
            IntPathBackend::encode_key(&flow())
        );
    }

    #[test]
    fn through_a_dart_store() {
        use dta_core::config::DartConfig;
        use dta_core::query::QueryOutcome;
        use dta_core::store::DartStore;

        let backend = RichPathBackend::latency_profile(5);
        let config = DartConfig::builder()
            .slots(1 << 10)
            .copies(2)
            .value_len(backend.value_len())
            .build()
            .unwrap();
        let mut store = DartStore::new(config);

        let mut stack = RichIntStack::new(backend.instructions());
        for id in [11u32, 22] {
            stack.push(hop(id)).unwrap();
        }
        let record = backend.record(&flow(), &stack).unwrap();
        store.insert(&record.key, &record.value).unwrap();
        match store.query(&record.key) {
            QueryOutcome::Answer(value) => {
                let decoded = backend.decode_value(&value).unwrap();
                assert_eq!(decoded.hops().len(), 2);
                assert_eq!(decoded.hops()[1].hop_latency, 2200);
            }
            QueryOutcome::Empty => panic!("just inserted"),
        }
    }

    #[test]
    fn oversized_stack_rejected() {
        let backend = RichPathBackend::latency_profile(2);
        let mut stack = RichIntStack::new(backend.instructions());
        for id in [1u32, 2, 3] {
            stack.push(hop(id)).unwrap();
        }
        assert!(backend.encode_value(&stack).is_err());
    }
}
