//! In-band INT path tracing (Table 1, row 1) — the paper's headline
//! workload.
//!
//! Key: the flow 5-tuple. Value: the packet-carried per-hop data — here
//! the 5-hop path trace of 32-bit switch IDs, i.e. the 160-bit values of
//! Figure 4.

use dta_wire::int::IntStack;
use dta_wire::{FiveTuple, Result};

use crate::event::{tag, Backend};

/// Number of hop entries carried per value (a 5-hop fat-tree path).
pub const PATH_HOPS: usize = 5;

/// The in-band INT path-tracing backend.
pub struct IntPathBackend;

impl Backend for IntPathBackend {
    type Key = FiveTuple;
    type Value = IntStack;

    /// 5 hops × 32 bits = 160 bits = 20 bytes.
    const VALUE_LEN: usize = PATH_HOPS * 4;

    fn encode_key(key: &FiveTuple) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + FiveTuple::WIRE_LEN);
        out.push(tag::IN_BAND);
        out.extend_from_slice(&key.to_bytes());
        out
    }

    fn encode_value(value: &IntStack) -> Vec<u8> {
        value
            .to_padded_value_bytes(PATH_HOPS)
            .expect("paths longer than PATH_HOPS are rejected at the sink")
    }

    fn decode_value(bytes: &[u8]) -> Result<IntStack> {
        IntStack::from_value_bytes(&bytes[..Self::VALUE_LEN.min(bytes.len())])
    }
}

impl IntPathBackend {
    /// Decode a path trace, dropping zero-padding entries.
    pub fn decode_path(bytes: &[u8]) -> Result<Vec<u32>> {
        let stack = Self::decode_value(bytes)?;
        Ok(stack
            .switch_ids()
            .into_iter()
            .filter(|&id| id != 0)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_wire::int::HopMetadata;
    use dta_wire::ipv4;

    fn flow() -> FiveTuple {
        FiveTuple {
            src_ip: ipv4::Address([10, 0, 0, 1]),
            dst_ip: ipv4::Address([10, 0, 1, 9]),
            src_port: 40000,
            dst_port: 80,
            protocol: 6,
        }
    }

    fn stack(ids: &[u32]) -> IntStack {
        let mut s = IntStack::new();
        for &id in ids {
            s.push(HopMetadata { switch_id: id }).unwrap();
        }
        s
    }

    #[test]
    fn value_is_160_bits() {
        assert_eq!(IntPathBackend::VALUE_LEN * 8, 160);
    }

    #[test]
    fn key_is_tagged() {
        let key = IntPathBackend::encode_key(&flow());
        assert_eq!(key[0], tag::IN_BAND);
        assert_eq!(key.len(), 14);
    }

    #[test]
    fn value_roundtrip_full_path() {
        let s = stack(&[11, 22, 33, 44, 55]);
        let bytes = IntPathBackend::encode_value(&s);
        assert_eq!(bytes.len(), IntPathBackend::VALUE_LEN);
        assert_eq!(IntPathBackend::decode_value(&bytes).unwrap(), s);
        assert_eq!(
            IntPathBackend::decode_path(&bytes).unwrap(),
            vec![11, 22, 33, 44, 55]
        );
    }

    #[test]
    fn short_path_padding_stripped() {
        let s = stack(&[7, 8]);
        let bytes = IntPathBackend::encode_value(&s);
        assert_eq!(bytes.len(), 20);
        assert_eq!(IntPathBackend::decode_path(&bytes).unwrap(), vec![7, 8]);
    }

    #[test]
    fn record_bundles_key_and_value() {
        let rec = IntPathBackend::record(&flow(), &stack(&[1, 2, 3]));
        assert_eq!(rec.key[0], tag::IN_BAND);
        assert_eq!(rec.value.len(), 20);
    }
}
