//! The backend abstraction: keys, values, and records.

use dta_wire::{Error, Result};

/// Domain-separation tags prepended to keys so multiple backends can
/// share one collector region.
pub mod tag {
    /// In-band INT (Table 1 row 1).
    pub const IN_BAND: u8 = 0x01;
    /// Postcard-mode INT (row 2).
    pub const POSTCARD: u8 = 0x02;
    /// Query-based mirroring (row 3).
    pub const QUERY_MIRROR: u8 = 0x03;
    /// Trace analysis (row 4).
    pub const TRACE: u8 = 0x04;
    /// Flow anomalies (row 5).
    pub const ANOMALY: u8 = 0x05;
    /// Network failures (row 6).
    pub const FAILURE: u8 = 0x06;
    /// Per-flow counters over the Key-Increment primitive.
    pub const FLOW_COUNT: u8 = 0x07;
    /// Per-flow event logs (postcard streams) over the Append primitive.
    pub const EVENT_LOG: u8 = 0x08;
}

/// A telemetry backend: how a measurement technique maps onto the DART
/// key-value schema.
pub trait Backend {
    /// The backend's key type.
    type Key;
    /// The backend's value type.
    type Value;

    /// Fixed value length in bytes (DART slots are fixed-size).
    const VALUE_LEN: usize;

    /// Encode a key (with the backend's domain tag).
    fn encode_key(key: &Self::Key) -> Vec<u8>;

    /// Encode a value to exactly [`Backend::VALUE_LEN`] bytes.
    fn encode_value(value: &Self::Value) -> Vec<u8>;

    /// Decode a value.
    fn decode_value(bytes: &[u8]) -> Result<Self::Value>;

    /// Bundle a `(key, value)` pair as an encodable record.
    fn record(key: &Self::Key, value: &Self::Value) -> TelemetryRecord {
        TelemetryRecord {
            key: Self::encode_key(key),
            value: Self::encode_value(value),
        }
    }
}

/// An encoded telemetry record, ready for the DART write path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryRecord {
    /// The encoded key (hashed by switches/operators).
    pub key: Vec<u8>,
    /// The encoded value (stored in the slot).
    pub value: Vec<u8>,
}

/// Helper: read a fixed-size array from `bytes` at `offset`.
pub(crate) fn read_array<const N: usize>(bytes: &[u8], offset: usize) -> Result<[u8; N]> {
    bytes
        .get(offset..offset + N)
        .and_then(|s| s.try_into().ok())
        .ok_or(Error::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let tags = [
            tag::IN_BAND,
            tag::POSTCARD,
            tag::QUERY_MIRROR,
            tag::TRACE,
            tag::ANOMALY,
            tag::FAILURE,
            tag::FLOW_COUNT,
            tag::EVENT_LOG,
        ];
        let unique: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(unique.len(), tags.len());
    }

    #[test]
    fn read_array_bounds() {
        let bytes = [1u8, 2, 3, 4];
        assert_eq!(read_array::<2>(&bytes, 1).unwrap(), [2, 3]);
        assert_eq!(read_array::<4>(&bytes, 1), Err(Error::Truncated));
    }
}
