//! Postcard-mode INT (Table 1, row 2).
//!
//! Every switch on the path reports its *own* measurement, keyed by
//! `(switch ID, flow 5-tuple)` — so the operator reconstructs per-hop
//! behaviour by issuing one query per `(switch, flow)` pair.

use dta_wire::{FiveTuple, Result};

use crate::event::{read_array, tag, Backend};

/// A postcard key: which switch, which flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PostcardKey {
    /// The reporting switch.
    pub switch_id: u32,
    /// The observed flow.
    pub flow: FiveTuple,
}

/// One switch-local measurement (what the switch knows about the packet
/// at its own pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalMeasurement {
    /// Ingress timestamp (ns, truncated).
    pub ingress_ts: u32,
    /// Egress timestamp (ns, truncated).
    pub egress_ts: u32,
    /// Queue depth observed at enqueue (cells).
    pub queue_depth: u32,
    /// Egress port.
    pub egress_port: u16,
    /// Queue ID.
    pub queue_id: u8,
    /// Reserved/flags.
    pub flags: u8,
    /// Hop latency in ns (egress − ingress, precomputed by the ASIC).
    pub hop_latency: u32,
}

impl LocalMeasurement {
    /// The hop latency implied by the timestamps.
    pub fn computed_latency(&self) -> u32 {
        self.egress_ts.wrapping_sub(self.ingress_ts)
    }
}

/// The postcard backend.
pub struct PostcardBackend;

impl Backend for PostcardBackend {
    type Key = PostcardKey;
    type Value = LocalMeasurement;

    /// 20-byte values: the same slot geometry as path tracing, so both
    /// backends can share a region.
    const VALUE_LEN: usize = 20;

    fn encode_key(key: &PostcardKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 4 + FiveTuple::WIRE_LEN);
        out.push(tag::POSTCARD);
        out.extend_from_slice(&key.switch_id.to_be_bytes());
        out.extend_from_slice(&key.flow.to_bytes());
        out
    }

    fn encode_value(value: &LocalMeasurement) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::VALUE_LEN);
        out.extend_from_slice(&value.ingress_ts.to_be_bytes());
        out.extend_from_slice(&value.egress_ts.to_be_bytes());
        out.extend_from_slice(&value.queue_depth.to_be_bytes());
        out.extend_from_slice(&value.egress_port.to_be_bytes());
        out.push(value.queue_id);
        out.push(value.flags);
        out.extend_from_slice(&value.hop_latency.to_be_bytes());
        out
    }

    fn decode_value(bytes: &[u8]) -> Result<LocalMeasurement> {
        Ok(LocalMeasurement {
            ingress_ts: u32::from_be_bytes(read_array::<4>(bytes, 0)?),
            egress_ts: u32::from_be_bytes(read_array::<4>(bytes, 4)?),
            queue_depth: u32::from_be_bytes(read_array::<4>(bytes, 8)?),
            egress_port: u16::from_be_bytes(read_array::<2>(bytes, 12)?),
            queue_id: *bytes.get(14).ok_or(dta_wire::Error::Truncated)?,
            flags: *bytes.get(15).ok_or(dta_wire::Error::Truncated)?,
            hop_latency: u32::from_be_bytes(read_array::<4>(bytes, 16)?),
        })
    }
}

impl PostcardBackend {
    /// The Append listkey for a `(switch, flow)` postcard *stream*.
    ///
    /// Key-Write keeps only the freshest postcard per `(switch, flow)`;
    /// routed through the Append primitive instead, every report lands
    /// in the listkey's ring and the operator reads the recent history.
    /// A distinct domain tag keeps ring listkeys from colliding with the
    /// slot keys of the overwrite-mode backend.
    pub fn encode_log_key(key: &PostcardKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 4 + FiveTuple::WIRE_LEN);
        out.push(tag::EVENT_LOG);
        out.extend_from_slice(&key.switch_id.to_be_bytes());
        out.extend_from_slice(&key.flow.to_bytes());
        out
    }

    /// Decode an Append query answer — the concatenated in-window
    /// entries, oldest first — into the measurement history.
    pub fn decode_log(bytes: &[u8]) -> Result<Vec<LocalMeasurement>> {
        if bytes.len() % Self::VALUE_LEN != 0 {
            return Err(dta_wire::Error::Truncated);
        }
        bytes
            .chunks(Self::VALUE_LEN)
            .map(Self::decode_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_wire::ipv4;

    fn key() -> PostcardKey {
        PostcardKey {
            switch_id: 1234,
            flow: FiveTuple {
                src_ip: ipv4::Address([10, 0, 0, 1]),
                dst_ip: ipv4::Address([10, 0, 1, 9]),
                src_port: 40000,
                dst_port: 80,
                protocol: 6,
            },
        }
    }

    fn measurement() -> LocalMeasurement {
        LocalMeasurement {
            ingress_ts: 1_000_000,
            egress_ts: 1_000_850,
            queue_depth: 12,
            egress_port: 48,
            queue_id: 3,
            flags: 0,
            hop_latency: 850,
        }
    }

    #[test]
    fn value_roundtrip() {
        let v = measurement();
        let bytes = PostcardBackend::encode_value(&v);
        assert_eq!(bytes.len(), PostcardBackend::VALUE_LEN);
        assert_eq!(PostcardBackend::decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn key_distinguishes_switches() {
        let mut k2 = key();
        k2.switch_id = 99;
        assert_ne!(
            PostcardBackend::encode_key(&key()),
            PostcardBackend::encode_key(&k2)
        );
    }

    #[test]
    fn latency_consistency() {
        let v = measurement();
        assert_eq!(v.computed_latency(), v.hop_latency);
    }

    #[test]
    fn truncated_value_rejected() {
        assert!(PostcardBackend::decode_value(&[0u8; 10]).is_err());
    }

    #[test]
    fn key_tag() {
        assert_eq!(PostcardBackend::encode_key(&key())[0], tag::POSTCARD);
    }

    #[test]
    fn log_key_is_domain_separated() {
        let slot_key = PostcardBackend::encode_key(&key());
        let log_key = PostcardBackend::encode_log_key(&key());
        assert_eq!(log_key[0], tag::EVENT_LOG);
        assert_ne!(slot_key, log_key);
        assert_eq!(slot_key[1..], log_key[1..], "same body, different domain");
    }

    #[test]
    fn log_roundtrip_oldest_first() {
        let mut older = measurement();
        older.ingress_ts = 1;
        let newer = measurement();
        let mut window = PostcardBackend::encode_value(&older);
        window.extend(PostcardBackend::encode_value(&newer));
        assert_eq!(
            PostcardBackend::decode_log(&window).unwrap(),
            vec![older, newer]
        );
        assert_eq!(PostcardBackend::decode_log(&[]).unwrap(), vec![]);
        assert!(PostcardBackend::decode_log(&window[..25]).is_err());
    }
}
