//! Trace-analysis telemetry (Table 1, row 4; dShark/Planck-style).
//!
//! In-network trace analyzers digest packet traces and publish compact
//! analysis outputs. Keys are `(trace ID, analysis kind)`; values are the
//! analysis output tuple.

use dta_wire::{Error, Result};

use crate::event::{read_array, tag, Backend};

/// What the analysis computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisKind {
    /// Loss localization between capture points.
    LossLocalization,
    /// One-way latency distribution summary.
    LatencySummary,
    /// Reordering detection.
    Reordering,
    /// Duplicate-packet detection.
    Duplication,
}

impl AnalysisKind {
    /// Stable wire ID.
    pub fn to_u16(self) -> u16 {
        match self {
            AnalysisKind::LossLocalization => 1,
            AnalysisKind::LatencySummary => 2,
            AnalysisKind::Reordering => 3,
            AnalysisKind::Duplication => 4,
        }
    }

    /// Decode a wire ID.
    pub fn from_u16(raw: u16) -> Result<AnalysisKind> {
        match raw {
            1 => Ok(AnalysisKind::LossLocalization),
            2 => Ok(AnalysisKind::LatencySummary),
            3 => Ok(AnalysisKind::Reordering),
            4 => Ok(AnalysisKind::Duplication),
            _ => Err(Error::Malformed),
        }
    }
}

/// A trace-analysis key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// The trace being analyzed.
    pub trace_id: u32,
    /// The analysis performed.
    pub kind: AnalysisKind,
}

/// The analysis output tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOutput {
    /// Packets analyzed.
    pub packets: u64,
    /// Affected packets (lost / reordered / duplicated …).
    pub affected: u32,
    /// Primary metric (latency p99 in ns, loss location code, …).
    pub metric: u32,
    /// Analysis completion timestamp (ns, truncated).
    pub timestamp: u32,
}

/// The trace-analysis backend.
pub struct TraceBackend;

impl Backend for TraceBackend {
    type Key = TraceKey;
    type Value = AnalysisOutput;

    const VALUE_LEN: usize = 20;

    fn encode_key(key: &TraceKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(7);
        out.push(tag::TRACE);
        out.extend_from_slice(&key.trace_id.to_be_bytes());
        out.extend_from_slice(&key.kind.to_u16().to_be_bytes());
        out
    }

    fn encode_value(value: &AnalysisOutput) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::VALUE_LEN);
        out.extend_from_slice(&value.packets.to_be_bytes());
        out.extend_from_slice(&value.affected.to_be_bytes());
        out.extend_from_slice(&value.metric.to_be_bytes());
        out.extend_from_slice(&value.timestamp.to_be_bytes());
        out
    }

    fn decode_value(bytes: &[u8]) -> Result<AnalysisOutput> {
        Ok(AnalysisOutput {
            packets: u64::from_be_bytes(read_array::<8>(bytes, 0)?),
            affected: u32::from_be_bytes(read_array::<4>(bytes, 8)?),
            metric: u32::from_be_bytes(read_array::<4>(bytes, 12)?),
            timestamp: u32::from_be_bytes(read_array::<4>(bytes, 16)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = AnalysisOutput {
            packets: 10_000_000,
            affected: 42,
            metric: 95_000,
            timestamp: 1234,
        };
        let bytes = TraceBackend::encode_value(&v);
        assert_eq!(bytes.len(), TraceBackend::VALUE_LEN);
        assert_eq!(TraceBackend::decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn kind_roundtrip() {
        for kind in [
            AnalysisKind::LossLocalization,
            AnalysisKind::LatencySummary,
            AnalysisKind::Reordering,
            AnalysisKind::Duplication,
        ] {
            assert_eq!(AnalysisKind::from_u16(kind.to_u16()).unwrap(), kind);
        }
        assert!(AnalysisKind::from_u16(0).is_err());
    }

    #[test]
    fn keys_tagged_and_distinct() {
        let a = TraceBackend::encode_key(&TraceKey {
            trace_id: 1,
            kind: AnalysisKind::Reordering,
        });
        let b = TraceBackend::encode_key(&TraceKey {
            trace_id: 1,
            kind: AnalysisKind::Duplication,
        });
        assert_eq!(a[0], tag::TRACE);
        assert_ne!(a, b);
    }
}
