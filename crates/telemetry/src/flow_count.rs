//! Per-flow packet/byte counters over the Key-Increment primitive.
//!
//! Instead of overwriting a slot per report (Key-Write), every packet of
//! a flow contributes a FETCH_ADD delta into one 8-byte counter word —
//! the aggregation happens *in collector memory*, so switches keep zero
//! per-flow counter state and the operator reads exact totals. Under
//! report loss the query side answers the **minimum** across copies, a
//! deliberately conservative total (an undercount, never an overcount).

use dta_wire::{FiveTuple, Result};

use crate::event::{read_array, tag, Backend};

/// The flow-counter backend: `5-tuple → running u64 total`.
pub struct FlowCountBackend;

impl Backend for FlowCountBackend {
    type Key = FiveTuple;
    type Value = u64;

    /// Key-Increment counter words are always 8 bytes (the RDMA atomic
    /// operand size).
    const VALUE_LEN: usize = 8;

    fn encode_key(flow: &FiveTuple) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + FiveTuple::WIRE_LEN);
        out.push(tag::FLOW_COUNT);
        out.extend_from_slice(&flow.to_bytes());
        out
    }

    fn encode_value(delta: &u64) -> Vec<u8> {
        delta.to_be_bytes().to_vec()
    }

    fn decode_value(bytes: &[u8]) -> Result<u64> {
        Ok(u64::from_be_bytes(read_array::<8>(bytes, 0)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_wire::ipv4;

    fn flow() -> FiveTuple {
        FiveTuple {
            src_ip: ipv4::Address([10, 0, 0, 1]),
            dst_ip: ipv4::Address([10, 0, 1, 9]),
            src_port: 40000,
            dst_port: 80,
            protocol: 6,
        }
    }

    #[test]
    fn value_roundtrip() {
        let bytes = FlowCountBackend::encode_value(&123_456_789);
        assert_eq!(bytes.len(), FlowCountBackend::VALUE_LEN);
        assert_eq!(FlowCountBackend::decode_value(&bytes).unwrap(), 123_456_789);
    }

    #[test]
    fn key_tag_and_distinctness() {
        let key = FlowCountBackend::encode_key(&flow());
        assert_eq!(key[0], tag::FLOW_COUNT);
        let mut other = flow();
        other.dst_port = 443;
        assert_ne!(key, FlowCountBackend::encode_key(&other));
    }

    #[test]
    fn truncated_value_rejected() {
        assert!(FlowCountBackend::decode_value(&[0u8; 7]).is_err());
    }
}
