//! Network-failure telemetry (Table 1, row 6; Pingmesh-style).
//!
//! Keyed by `(failure ID, location)` so operators can query "what do we
//! know about failure F at location L" during an incident.

use dta_wire::Result;

use crate::event::{read_array, tag, Backend};

/// A failure key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailureKey {
    /// Failure class (link down, high loss, latency SLA breach, …).
    pub failure_id: u32,
    /// Location code (switch / rack / pod encoding chosen by operator).
    pub location: u32,
}

/// The failure report payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// Detection timestamp (ns, truncated).
    pub timestamp: u32,
    /// Debug code (protocol-specific detail).
    pub debug_code: u32,
    /// Affected entity (port, peer switch, …).
    pub entity: u32,
    /// Measured severity (loss ppm, latency µs, …).
    pub severity: u32,
    /// Occurrences aggregated into this report.
    pub count: u32,
}

/// The network-failure backend.
pub struct FailureBackend;

impl Backend for FailureBackend {
    type Key = FailureKey;
    type Value = FailureEvent;

    const VALUE_LEN: usize = 20;

    fn encode_key(key: &FailureKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(9);
        out.push(tag::FAILURE);
        out.extend_from_slice(&key.failure_id.to_be_bytes());
        out.extend_from_slice(&key.location.to_be_bytes());
        out
    }

    fn encode_value(value: &FailureEvent) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::VALUE_LEN);
        out.extend_from_slice(&value.timestamp.to_be_bytes());
        out.extend_from_slice(&value.debug_code.to_be_bytes());
        out.extend_from_slice(&value.entity.to_be_bytes());
        out.extend_from_slice(&value.severity.to_be_bytes());
        out.extend_from_slice(&value.count.to_be_bytes());
        out
    }

    fn decode_value(bytes: &[u8]) -> Result<FailureEvent> {
        Ok(FailureEvent {
            timestamp: u32::from_be_bytes(read_array::<4>(bytes, 0)?),
            debug_code: u32::from_be_bytes(read_array::<4>(bytes, 4)?),
            entity: u32::from_be_bytes(read_array::<4>(bytes, 8)?),
            severity: u32::from_be_bytes(read_array::<4>(bytes, 12)?),
            count: u32::from_be_bytes(read_array::<4>(bytes, 16)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = FailureEvent {
            timestamp: 1,
            debug_code: 2,
            entity: 3,
            severity: 40_000,
            count: 5,
        };
        let bytes = FailureBackend::encode_value(&v);
        assert_eq!(bytes.len(), FailureBackend::VALUE_LEN);
        assert_eq!(FailureBackend::decode_value(&bytes).unwrap(), v);
    }

    #[test]
    fn keys_distinguish_locations() {
        let a = FailureBackend::encode_key(&FailureKey {
            failure_id: 7,
            location: 1,
        });
        let b = FailureBackend::encode_key(&FailureKey {
            failure_id: 7,
            location: 2,
        });
        assert_ne!(a, b);
        assert_eq!(a[0], tag::FAILURE);
    }

    #[test]
    fn truncated_rejected() {
        assert!(FailureBackend::decode_value(&[0u8; 12]).is_err());
    }
}
