//! # dta-telemetry — measurement backends on the DART key-value schema
//!
//! DART "does not place any specific restriction on the underlying
//! measurement framework" (§3): any telemetry technique that can phrase
//! its reports as `(key, value)` pairs can ride the direct-access path.
//! Table 1 of the paper lists six such backends; this crate implements
//! each one's key and value encodings:
//!
//! | Backend | Key | Value | Module |
//! |---|---|---|---|
//! | In-band INT | flow 5-tuple | packet-carried data (path trace) | [`int_path`] |
//! | Postcards | switch ID ‖ 5-tuple | local measurement | [`postcard`] |
//! | Query-based mirroring | query ID | query answer | [`query_mirror`] |
//! | Trace analysis | trace ID ‖ analysis kind | analysis output | [`trace`] |
//! | Flow anomalies | 5-tuple ‖ anomaly ID | time + event data | [`anomaly`] |
//! | Network failures | failure ID ‖ location | time + debug info | [`failure`] |
//!
//! Key encodings are *domain separated* (a leading tag byte per backend)
//! so the same collector region can hold several backends at once without
//! cross-backend key collisions being systematic.
//!
//! All value encodings are fixed-size per backend — DART slots are
//! fixed-size — and every encode has a decode with round-trip tests.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod anomaly;
pub mod event;
pub mod failure;
pub mod flow_count;
pub mod int_path;
pub mod postcard;
pub mod query_mirror;
pub mod rich_path;
pub mod trace;

pub use event::{Backend, TelemetryRecord};
