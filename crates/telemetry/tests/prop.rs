//! Property-based round-trips for every backend codec.

use proptest::prelude::*;

use dta_telemetry::anomaly::{AnomalyBackend, AnomalyEvent, AnomalyKey, AnomalyKind};
use dta_telemetry::event::Backend;
use dta_telemetry::failure::{FailureBackend, FailureEvent, FailureKey};
use dta_telemetry::postcard::{LocalMeasurement, PostcardBackend, PostcardKey};
use dta_telemetry::query_mirror::{QueryAnswer, QueryMirrorBackend};
use dta_telemetry::trace::{AnalysisKind, AnalysisOutput, TraceBackend, TraceKey};
use dta_wire::{ipv4, FiveTuple};

fn arb_flow() -> impl Strategy<Value = FiveTuple> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(s, d, sp, dp, p)| FiveTuple {
            src_ip: ipv4::Address(s),
            dst_ip: ipv4::Address(d),
            src_port: sp,
            dst_port: dp,
            protocol: p,
        })
}

proptest! {
    #[test]
    fn postcard_roundtrip(flow in arb_flow(), sw in any::<u32>(),
                          its in any::<u32>(), ets in any::<u32>(), qd in any::<u32>(),
                          port in any::<u16>(), qid in any::<u8>(), flags in any::<u8>(),
                          lat in any::<u32>()) {
        let value = LocalMeasurement {
            ingress_ts: its, egress_ts: ets, queue_depth: qd,
            egress_port: port, queue_id: qid, flags, hop_latency: lat,
        };
        let bytes = PostcardBackend::encode_value(&value);
        prop_assert_eq!(bytes.len(), PostcardBackend::VALUE_LEN);
        prop_assert_eq!(PostcardBackend::decode_value(&bytes).unwrap(), value);
        // Key uniqueness over switch id.
        let k1 = PostcardBackend::encode_key(&PostcardKey { switch_id: sw, flow });
        let k2 = PostcardBackend::encode_key(&PostcardKey { switch_id: sw.wrapping_add(1), flow });
        prop_assert_ne!(k1, k2);
    }

    #[test]
    fn query_mirror_roundtrip(count in any::<u64>(), ts in any::<u32>(), sw in any::<u32>(),
                              len in any::<u16>(), flags in any::<u16>()) {
        let value = QueryAnswer {
            match_count: count, last_match_ts: ts, switch_id: sw,
            last_pkt_len: len, flags,
        };
        let bytes = QueryMirrorBackend::encode_value(&value);
        prop_assert_eq!(QueryMirrorBackend::decode_value(&bytes).unwrap(), value);
    }

    #[test]
    fn anomaly_roundtrip(flow in arb_flow(), kind_idx in 0usize..5,
                         ts in any::<u32>(), sw in any::<u32>(),
                         data in any::<u64>(), count in any::<u32>()) {
        let kind = [
            AnomalyKind::Drop, AnomalyKind::Loop, AnomalyKind::Congestion,
            AnomalyKind::Blackhole, AnomalyKind::PathChange,
        ][kind_idx];
        let value = AnomalyEvent { timestamp: ts, switch_id: sw, event_data: data, count };
        let bytes = AnomalyBackend::encode_value(&value);
        prop_assert_eq!(AnomalyBackend::decode_value(&bytes).unwrap(), value);
        prop_assert_eq!(AnomalyKind::from_u16(kind.to_u16()).unwrap(), kind);
        let _ = AnomalyBackend::encode_key(&AnomalyKey { flow, kind });
    }

    #[test]
    fn failure_roundtrip(fid in any::<u32>(), loc in any::<u32>(), ts in any::<u32>(),
                         code in any::<u32>(), entity in any::<u32>(),
                         sev in any::<u32>(), count in any::<u32>()) {
        let value = FailureEvent {
            timestamp: ts, debug_code: code, entity, severity: sev, count,
        };
        let bytes = FailureBackend::encode_value(&value);
        prop_assert_eq!(FailureBackend::decode_value(&bytes).unwrap(), value);
        let k1 = FailureBackend::encode_key(&FailureKey { failure_id: fid, location: loc });
        let k2 = FailureBackend::encode_key(&FailureKey { failure_id: fid, location: loc.wrapping_add(1) });
        prop_assert_ne!(k1, k2);
    }

    #[test]
    fn trace_roundtrip(tid in any::<u32>(), kind_idx in 0usize..4,
                       pkts in any::<u64>(), affected in any::<u32>(),
                       metric in any::<u32>(), ts in any::<u32>()) {
        let kind = [
            AnalysisKind::LossLocalization, AnalysisKind::LatencySummary,
            AnalysisKind::Reordering, AnalysisKind::Duplication,
        ][kind_idx];
        let value = AnalysisOutput { packets: pkts, affected, metric, timestamp: ts };
        let bytes = TraceBackend::encode_value(&value);
        prop_assert_eq!(TraceBackend::decode_value(&bytes).unwrap(), value);
        let _ = TraceBackend::encode_key(&TraceKey { trace_id: tid, kind });
    }

    /// All backends share 20-byte values, so any backend's value decodes
    /// without panicking under any other backend (type confusion is
    /// detected by checksums/key-domains, not codecs).
    #[test]
    fn codecs_are_total_on_20_bytes(bytes in proptest::collection::vec(any::<u8>(), 20..=20)) {
        let _ = PostcardBackend::decode_value(&bytes).unwrap();
        let _ = QueryMirrorBackend::decode_value(&bytes).unwrap();
        let _ = AnomalyBackend::decode_value(&bytes).unwrap();
        let _ = FailureBackend::decode_value(&bytes).unwrap();
        let _ = TraceBackend::decode_value(&bytes).unwrap();
    }
}
