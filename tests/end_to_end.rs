//! Whole-system integration: multi-collector sharding, per-query policy
//! trade-offs, and epoch rotation over collector memory.

use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::epoch::EpochStore;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::core::query::{QueryOutcome, ReturnPolicy};
use direct_telemetry_access::core::store::DartStore;
use direct_telemetry_access::topology::sim::{FatTreeSim, ReportMode, SimConfig};

#[test]
fn four_collector_cluster_serves_the_fat_tree() {
    let mut sim = FatTreeSim::new(SimConfig {
        k: 4,
        slots: 1 << 10,
        collectors: 4,
        mode: ReportMode::AllCopies,
        seed: 0xE2E4,
        ..SimConfig::default()
    })
    .unwrap();
    sim.run_flows(1000).unwrap();
    let report = sim.query_all(4);
    // α = 1000 / (4 × 1024) ≈ 0.244 → theory predicts ≈94%.
    let theory = dta_analysis::average_query_success(1000.0 / 4096.0, 2);
    assert!(
        (report.success_rate() - theory).abs() < 0.03,
        "observed {} vs theory {theory}",
        report.success_rate()
    );
    assert_eq!(report.error, 0);

    // All four collectors participate, and every report is accounted for:
    // writes + all drop reasons == frames received.
    let mut total_rx = 0;
    for i in 0..4 {
        let counters = sim.cluster().collector(i).unwrap().nic_counters();
        assert!(counters.writes > 0, "collector {i} idle");
        assert_eq!(
            counters.writes + counters.dropped(),
            counters.frames_rx,
            "collector {i}: frames unaccounted"
        );
        total_rx += counters.frames_rx;
    }
    assert_eq!(total_rx, 2 * 1000);
}

#[test]
fn per_query_policies_trade_empties_for_errors() {
    // Heavily loaded store with tiny checksums: FirstMatch answers more
    // (with errors); Consensus answers less but *never* wrongly here.
    use direct_telemetry_access::wire::dart::ChecksumWidth;
    use dta_bench::storesim::{run, StoreSimParams};

    let base = StoreSimParams {
        slots: 1 << 13,
        keys: 1 << 14,
        checksum: ChecksumWidth::B8,
        ..StoreSimParams::default()
    };
    let first = run(
        StoreSimParams {
            policy: ReturnPolicy::FirstMatch,
            ..base
        },
        1,
    );
    let consensus = run(
        StoreSimParams {
            policy: ReturnPolicy::Consensus(2),
            ..base
        },
        1,
    );
    assert!(first.error > 0, "FirstMatch at b=8 must show errors");
    assert!(
        consensus.error < first.error / 4,
        "Consensus should slash errors: {} vs {}",
        consensus.error,
        first.error
    );
    assert!(
        consensus.empty > first.empty,
        "Consensus pays with more empties"
    );
}

#[test]
fn epoch_rotation_preserves_history_under_continuous_ingest() {
    let config = DartConfig::builder()
        .slots(1 << 10)
        .copies(2)
        .mapping(MappingKind::Mix64 { seed: 3 })
        .build()
        .unwrap();
    let mut store = EpochStore::new(config, 3).unwrap();

    // Five epochs of ingest; key "survivor" written every epoch with an
    // epoch-specific value.
    for epoch in 0..5u8 {
        for i in 0..500u32 {
            let key = format!("e{epoch}-k{i}");
            store.insert(key.as_bytes(), &[i as u8; 20]).unwrap();
        }
        store.insert(b"survivor", &[0xE0 + epoch; 20]).unwrap();
        store.rotate();
    }

    // Every epoch's survivor value is recoverable, from DRAM or the
    // persistent tier.
    for epoch in 0..5u64 {
        match store.query_epoch(epoch, b"survivor").unwrap() {
            QueryOutcome::Answer(v) => assert_eq!(v[0], 0xE0 + epoch as u8),
            QueryOutcome::Empty => panic!("survivor lost in epoch {epoch}"),
        }
    }
    let stats = store.stats();
    assert_eq!(stats.sealed, 5);
    assert_eq!(stats.archived, 2); // 5 sealed - 3 DRAM slots
    assert!(stats.persistent_queries >= 2);
}

#[test]
fn store_over_rdma_memory_equals_local_store() {
    // A DartStore built over a memory snapshot from the packet path must
    // answer identically to a locally-written store with the same config.
    use direct_telemetry_access::collector::DartCollector;
    use direct_telemetry_access::switch::control_plane::ControlPlane;
    use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
    use direct_telemetry_access::switch::SwitchIdentity;
    use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};

    let config = DartConfig::builder()
        .slots(1 << 10)
        .copies(2)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let mut collector = DartCollector::new(0, config.clone()).unwrap();
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(5),
        EgressConfig {
            copies: 2,
            slots: 1 << 10,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: 20,
            },
            collectors: 1,
            udp_src_port: 49152,
            primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
        },
        0x99,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &[collector.endpoint()])
        .unwrap();

    let mut local = DartStore::new(config.clone());
    for i in 0..200u64 {
        let key = i.to_le_bytes();
        let value = [i as u8; 20];
        local.insert(&key, &value).unwrap();
        for copy in 0..2 {
            let report = egress.craft_report_copy(&key, &value, copy).unwrap();
            collector.receive_frame(&report.frame);
        }
    }

    // Byte-for-byte: the RDMA-written region equals the local store.
    let remote = collector.memory().snapshot();
    assert_eq!(remote, local.memory(), "memory images diverge");

    // And a store constructed over the snapshot answers identically.
    let rebuilt = DartStore::from_memory(config, remote).unwrap();
    for i in 0..200u64 {
        let key = i.to_le_bytes();
        assert_eq!(rebuilt.query(&key), local.query(&key));
    }
}
