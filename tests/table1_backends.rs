//! Table 1 end-to-end: every measurement backend rides the same DART
//! collection path, including through the packet-level pipeline.

use direct_telemetry_access::collector::CollectorCluster;
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::core::query::QueryOutcome;
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::telemetry::event::Backend;
use direct_telemetry_access::telemetry::postcard::{
    LocalMeasurement, PostcardBackend, PostcardKey,
};
use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};
use direct_telemetry_access::wire::{ipv4, FiveTuple};
use dta_bench::table1::run_table1;

#[test]
fn all_six_backends_roundtrip_through_the_store() {
    for row in run_table1() {
        assert!(row.roundtrip_ok, "{} failed", row.backend);
    }
}

#[test]
fn postcards_ride_the_full_packet_path() {
    // Postcard mode: every switch on a path reports its own local
    // measurement keyed by (switchID, 5-tuple); here three switches
    // report about one flow through real RoCEv2 frames.
    let config = DartConfig::builder()
        .slots(1 << 12)
        .copies(2)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let mut cluster = CollectorCluster::new(config).unwrap();

    let flow = FiveTuple {
        src_ip: ipv4::Address([10, 0, 0, 2]),
        dst_ip: ipv4::Address([10, 2, 1, 3]),
        src_port: 50123,
        dst_port: 80,
        protocol: 6,
    };

    let switch_ids = [11u32, 22, 33];
    for (i, &switch_id) in switch_ids.iter().enumerate() {
        let mut egress = DartEgress::new(
            SwitchIdentity::derived(switch_id),
            EgressConfig {
                copies: 2,
                slots: 1 << 12,
                layout: SlotLayout {
                    checksum: ChecksumWidth::B32,
                    value_len: 20,
                },
                collectors: 1,
                udp_src_port: 49152,
                primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
            },
            u64::from(switch_id),
        )
        .unwrap();
        let directory = cluster.directory_for_switch();
        ControlPlane::new()
            .install_directory(&mut egress, &directory)
            .unwrap();

        let record = PostcardBackend::record(
            &PostcardKey { switch_id, flow },
            &LocalMeasurement {
                ingress_ts: 1000 * (i as u32 + 1),
                egress_ts: 1000 * (i as u32 + 1) + 120,
                queue_depth: 5 * i as u32,
                egress_port: 8,
                queue_id: 0,
                flags: 0,
                hop_latency: 120,
            },
        );
        for copy in 0..2 {
            let report = egress
                .craft_report_copy(&record.key, &record.value, copy)
                .unwrap();
            cluster.deliver(&report.frame);
        }
    }

    // The operator reconstructs the per-hop view with one query per
    // (switch, flow) pair.
    for (i, &switch_id) in switch_ids.iter().enumerate() {
        let key = PostcardBackend::encode_key(&PostcardKey { switch_id, flow });
        match cluster.query(&key) {
            QueryOutcome::Answer(value) => {
                let m = PostcardBackend::decode_value(&value).unwrap();
                assert_eq!(m.hop_latency, 120);
                assert_eq!(m.queue_depth, 5 * i as u32);
            }
            QueryOutcome::Empty => panic!("postcard from switch {switch_id} lost"),
        }
    }
}
