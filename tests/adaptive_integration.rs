//! §5.1 adaptive N, closed loop: the controller reads *actual NIC write
//! counters* from a live collector and walks down the optimal-N bands as
//! the region fills.

use direct_telemetry_access::collector::DartCollector;
use direct_telemetry_access::core::adaptive::{AdaptiveConfig, AdaptiveN};
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};

const SLOTS: u64 = 1 << 12;

#[test]
fn controller_tracks_load_from_nic_counters() {
    let config = DartConfig::builder()
        .slots(SLOTS)
        .copies(2)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let mut collector = DartCollector::new(0, config).unwrap();
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(1),
        EgressConfig {
            copies: 2,
            slots: SLOTS,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: 20,
            },
            collectors: 1,
            udp_src_port: 49152,
            primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
        },
        0xADA,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &[collector.endpoint()])
        .unwrap();

    let mut controller = AdaptiveN::new(AdaptiveConfig::default(), 4).unwrap();
    let mut recommendations = Vec::new();
    let mut keys_written = 0u64;

    // Grow the load in steps of α ≈ 0.25; after each step the control
    // plane polls the NIC counter and re-evaluates N. (Reports keep
    // using N=2 — what matters here is the *recommendation* trace; a
    // full redeployment loop would also reconfigure the switches.)
    for _step in 0..12 {
        for _ in 0..(SLOTS / 4) {
            let key = dta_core::hash::hash_bytes(&keys_written.to_le_bytes(), 7).to_le_bytes();
            keys_written += 1;
            for copy in 0..2 {
                let report = egress.craft_report_copy(&key, &[copy; 20], copy).unwrap();
                collector.receive_frame(&report.frame);
            }
        }
        let writes = collector.nic_counters().writes;
        let alpha = AdaptiveN::estimate_load(writes, 2, SLOTS);
        // The counter-derived estimate must equal the true load exactly
        // (no report was lost on this clean path).
        assert!(
            (alpha - keys_written as f64 / SLOTS as f64).abs() < 1e-9,
            "estimate {alpha} vs truth {}",
            keys_written as f64 / SLOTS as f64
        );
        recommendations.push(controller.observe(alpha));
    }

    // The trace must be non-increasing and span the bands: start high
    // (light load), end at N=1 (α = 3).
    assert!(
        recommendations.windows(2).all(|w| w[1] <= w[0]),
        "recommendations flapped: {recommendations:?}"
    );
    assert_eq!(*recommendations.first().unwrap(), 4);
    assert_eq!(*recommendations.last().unwrap(), 1);
    assert!(
        recommendations.contains(&2),
        "should pass through the N=2 band: {recommendations:?}"
    );
}
