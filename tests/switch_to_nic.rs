//! §6 feasibility cross-checks: the switch pipeline's frames are
//! hardware-valid and bit-exact with the collector side.

use direct_telemetry_access::collector::DartCollector;
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::{AddressMapping, CrcMapping, MappingKind};
use direct_telemetry_access::core::query::QueryOutcome;
use direct_telemetry_access::rdma::nic::{DropReason, RxAction};
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};
use direct_telemetry_access::wire::{ethernet, ipv4, roce, udp};

const SLOTS: u64 = 1 << 12;

fn setup() -> (DartEgress, DartCollector) {
    let config = DartConfig::builder()
        .slots(SLOTS)
        .copies(2)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let collector = DartCollector::new(0, config).unwrap();
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(7),
        EgressConfig {
            copies: 2,
            slots: SLOTS,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: 20,
            },
            collectors: 1,
            udp_src_port: 49152,
            primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
        },
        0xBEE,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &[collector.endpoint()])
        .unwrap();
    (egress, collector)
}

#[test]
fn crafted_frames_parse_as_valid_roce() {
    let (mut egress, _) = setup();
    let report = egress.craft_report_copy(b"key-1", &[5u8; 20], 0).unwrap();

    let eth = ethernet::Frame::new_checked(&report.frame[..]).unwrap();
    assert_eq!(eth.ethertype(), ethernet::EtherType::Ipv4);
    let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
    assert!(ip.verify_checksum(), "IPv4 checksum must be valid");
    let dgram = udp::Datagram::new_checked(ip.payload()).unwrap();
    assert_eq!(dgram.dst_port(), udp::ROCEV2_PORT);

    // iCRC validates, and the transport packet parses as a UC WRITE.
    let udp_bytes = ip.payload();
    roce::icrc::verify(
        ip.header_bytes(),
        &udp_bytes[..udp::HEADER_LEN],
        dgram.payload(),
    )
    .expect("switch-computed iCRC must verify");
    let body = &dgram.payload()[..dgram.payload().len() - roce::ICRC_LEN];
    match roce::RoceRepr::parse(body).unwrap() {
        roce::RoceRepr::Write { bth, reth, payload } => {
            assert_eq!(bth.opcode, roce::Opcode::UcRdmaWriteOnly);
            assert_eq!(payload.len(), 24);
            assert_eq!(reth.dma_len, 24);
        }
        other => panic!("expected WRITE, got {other:?}"),
    }
}

#[test]
fn switch_writes_exactly_where_the_query_engine_looks() {
    let (mut egress, mut collector) = setup();
    let mapping = CrcMapping::new();
    let key = b"int-path:flow-42";
    let value = [0x33u8; 20];

    for copy in 0..2u8 {
        let report = egress.craft_report_copy(key, &value, copy).unwrap();
        // The slot the switch computed must match dta-core's mapping.
        assert_eq!(report.slot, mapping.slot(key, copy, SLOTS));
        let outcome = collector.receive_frame(&report.frame);
        assert!(matches!(outcome.action, RxAction::WriteExecuted { .. }));
    }
    assert_eq!(collector.query(key), QueryOutcome::Answer(value.to_vec()));
}

#[test]
fn ttl_decrement_en_route_does_not_break_icrc() {
    // The iCRC masks variant fields; a router decrementing TTL (and
    // fixing the IP checksum) must not invalidate the frame.
    let (mut egress, mut collector) = setup();
    let report = egress.craft_report_copy(b"key-ttl", &[9u8; 20], 0).unwrap();
    let mut frame = report.frame.clone();
    {
        let mut eth = ethernet::Frame::new_unchecked(&mut frame[..]);
        let mut ip = ipv4::Packet::new_unchecked(eth.payload_mut());
        ip.set_ttl(63);
        ip.fill_checksum();
    }
    let outcome = collector.receive_frame(&frame);
    assert!(
        matches!(outcome.action, RxAction::WriteExecuted { .. }),
        "{outcome:?}"
    );
}

#[test]
fn in_flight_corruption_is_dropped_before_dma() {
    let (mut egress, mut collector) = setup();
    let report = egress
        .craft_report_copy(b"key-corrupt", &[1u8; 20], 0)
        .unwrap();

    // Flip one payload bit without fixing the iCRC.
    let mut frame = report.frame.clone();
    let len = frame.len();
    frame[len - 10] ^= 0x01;
    let outcome = collector.receive_frame(&frame);
    assert_eq!(outcome.action, RxAction::Dropped(DropReason::Icrc));

    // Memory must be untouched: the query comes back empty.
    assert_eq!(collector.query(b"key-corrupt"), QueryOutcome::Empty);
}

#[test]
fn psn_sequences_per_switch_are_accepted() {
    let (mut egress, mut collector) = setup();
    // A burst of reports from one switch: PSNs 0,1,2,… must all land.
    for i in 0..32u64 {
        let key = i.to_le_bytes();
        let report = egress.craft_report(&key, &[i as u8; 20]).unwrap();
        let outcome = collector.receive_frame(&report.frame);
        assert!(
            matches!(outcome.action, RxAction::WriteExecuted { .. }),
            "report {i} rejected: {outcome:?}"
        );
    }
    assert_eq!(collector.nic_counters().writes, 32);
    assert_eq!(collector.nic_counters().psn, 0);
}

#[test]
fn sram_budget_supports_tens_of_thousands_of_collectors() {
    // §6: "about 20 bytes of on-switch SRAM per-collector ... support
    // for tens of thousands of collectors".
    let per = DartEgress::sram_bytes_per_collector();
    assert_eq!(per, 20);
    let budget_for_50k = ControlPlane::new().sram_budget(50_000);
    assert!(budget_for_50k <= 1_000_000, "1 MB for 50k collectors");
}
