//! §3's robustness claim: DART tolerates report loss gracefully —
//! lost RDMA WRITEs degrade queryability smoothly and never corrupt
//! answers.

use direct_telemetry_access::rdma::link::FaultModel;
use direct_telemetry_access::topology::sim::{FatTreeSim, ReportMode, SimConfig};

fn run_with_loss(loss: f64, reports_per_flow: u8, seed: u64) -> (f64, u64, u64) {
    let mut sim = FatTreeSim::new(SimConfig {
        slots: 1 << 12,
        fault: if loss == 0.0 {
            FaultModel::Perfect
        } else {
            FaultModel::Bernoulli { loss }
        },
        mode: ReportMode::PerPacket(reports_per_flow),
        seed,
        ..SimConfig::default()
    })
    .unwrap();
    sim.run_flows(400).unwrap();
    let report = sim.query_all(1);
    (report.success_rate(), report.error, report.link.dropped)
}

#[test]
fn loss_degrades_gracefully_and_never_corrupts() {
    let mut prev_rate = 1.1f64;
    for &loss in &[0.0f64, 0.1, 0.3, 0.6] {
        let (rate, errors, dropped) = run_with_loss(loss, 1, 0x105E);
        assert_eq!(errors, 0, "loss must never cause wrong answers");
        if loss > 0.0 {
            assert!(dropped > 0, "fault model must actually drop");
        }
        assert!(
            rate <= prev_rate + 0.03,
            "success should not improve with more loss: {rate} after {prev_rate}"
        );
        // With one report per flow, success ≈ delivery rate.
        let expected = 1.0 - loss;
        assert!(
            (rate - expected).abs() < 0.1,
            "loss {loss}: success {rate}, expected ≈{expected}"
        );
        prev_rate = rate;
    }
}

#[test]
fn redundant_reports_mask_loss() {
    // §3: switches send multiple redundant reports; with loss p and r
    // independent reports, a key survives unless all copies are lost.
    let (one, _, _) = run_with_loss(0.3, 1, 0xAB);
    let (four, _, _) = run_with_loss(0.3, 4, 0xAB);
    assert!(
        four > one + 0.15,
        "4 reports ({four}) should beat 1 report ({one}) at 30% loss"
    );
    assert!(
        four > 0.9,
        "4 reports at 30% loss should exceed 90%: {four}"
    );
}

#[test]
fn loss_theory_matches_packet_level_sim() {
    // The exact occupancy formula of dta-analysis::loss against the full
    // pipeline: per-packet reporting, Bernoulli loss, aging.
    for &(loss, reports, flows) in &[(0.2f64, 2u8, 600u64), (0.4, 3, 800), (0.1, 1, 500)] {
        let slots = 1u64 << 12;
        let mut sim = FatTreeSim::new(SimConfig {
            slots,
            fault: FaultModel::Bernoulli { loss },
            mode: ReportMode::PerPacket(reports),
            seed: 0x70_55 ^ reports as u64,
            ..SimConfig::default()
        })
        .unwrap();
        sim.run_flows(flows).unwrap();
        let report = sim.query_all(1);
        let alpha = flows as f64 / slots as f64;
        let theory =
            dta_analysis::loss::average_success_with_loss(alpha, 2, u32::from(reports), loss);
        assert!(
            (report.success_rate() - theory).abs() < 0.05,
            "loss={loss} r={reports}: sim {} vs theory {theory}",
            report.success_rate()
        );
    }
}

#[test]
fn reordering_is_harmless_for_uc_writes() {
    let mut sim = FatTreeSim::new(SimConfig {
        slots: 1 << 12,
        fault: FaultModel::Reorder { prob: 0.5 },
        mode: ReportMode::AllCopies,
        seed: 0x0D0,
        ..SimConfig::default()
    })
    .unwrap();
    sim.run_flows(300).unwrap();
    let report = sim.query_all(1);
    // Reordered UC "Only" packets still execute (PSN gaps are
    // tolerated); a reordered pair loses at most the lower-PSN write of
    // the *same* QP, and distinct slots make that mostly invisible.
    assert!(
        report.success_rate() > 0.9,
        "reordering crushed success: {}",
        report.success_rate()
    );
    assert_eq!(report.error, 0);
}
