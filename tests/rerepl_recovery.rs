//! The recovery re-replication acceptance matrix: crash a primary,
//! write a batch of keys while it is down (so they land at failover
//! targets), recover it, drive the control-plane sweep — and then every
//! outage-era key must answer with the exact written value, with **zero
//! empty returns and zero errors**, across all three translation
//! primitives and all four return policies.
//!
//! This is the paper's collection-availability story closed end to end:
//! the failover hash keeps telemetry flowing during the outage, and the
//! sweep moves that telemetry home afterwards so the recovered primary
//! is authoritative again instead of silently shadowing the stranded
//! copies.

use direct_telemetry_access::collector::{CollectorCluster, CollectorHealth, SweepConfig};
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::core::primitive::{increment_encode, PrimitiveSpec};
use direct_telemetry_access::core::query::{DecisionReason, QueryOutcome, ReturnPolicy};
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;

const VALUE_LEN: usize = 12;
const COLLECTORS: u32 = 3;
const CRASHED: u32 = 1;

const POLICIES: [ReturnPolicy; 4] = [
    ReturnPolicy::UniqueValue,
    ReturnPolicy::FirstMatch,
    ReturnPolicy::Plurality,
    ReturnPolicy::Consensus(2),
];

fn all_primitives() -> [PrimitiveSpec; 3] {
    [
        PrimitiveSpec::KeyWrite,
        PrimitiveSpec::Append { ring_capacity: 4 },
        PrimitiveSpec::KeyIncrement,
    ]
}

/// One switch egress wired to a 3-collector cluster under `primitive`.
fn rig(primitive: PrimitiveSpec) -> (DartEgress, CollectorCluster) {
    // Append gets a larger directory: rings have no copy fan-out and
    // shared rings would make per-key value assertions ambiguous.
    let slots = match primitive {
        PrimitiveSpec::Append { .. } => 1 << 12,
        _ => 1 << 10,
    };
    let config = DartConfig::builder()
        .slots(slots)
        .value_len(VALUE_LEN)
        .copies(2)
        .collectors(COLLECTORS)
        .mapping(MappingKind::Crc)
        .primitive(primitive)
        .build()
        .unwrap();
    let layout = config.layout;
    let copies = config.copies;
    let mut cluster = CollectorCluster::new(config).unwrap();
    let directory = cluster.directory_for_switch();
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(1),
        EgressConfig {
            copies,
            slots,
            layout,
            collectors: COLLECTORS,
            udp_src_port: 49152,
            primitive,
        },
        7,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &directory)
        .unwrap();
    (egress, cluster)
}

/// The value key `i` writes under each primitive, and the exact bytes
/// its query must return afterwards.
fn value_for(primitive: PrimitiveSpec, i: usize) -> Vec<u8> {
    match primitive {
        PrimitiveSpec::KeyIncrement => increment_encode(1 + i as u64).to_vec(),
        _ => vec![0x10 + i as u8; VALUE_LEN],
    }
}

/// Flip one collector's liveness everywhere the mask lives.
fn flip_liveness(egress: &mut DartEgress, cluster: &mut CollectorCluster, id: u32, live: bool) {
    egress.set_collector_liveness(id, live).unwrap();
    let mut mask = cluster.liveness_mask();
    mask.set_live(id, live);
    cluster.set_liveness_mask(mask);
}

/// Outage keys: enough distinct keys that at least eight of them are
/// owned by the collector this suite crashes (the rest exercise the
/// healthy write path alongside).
fn outage_keys(cluster: &CollectorCluster) -> (Vec<Vec<u8>>, usize) {
    let mut keys = Vec::new();
    let mut owned = 0usize;
    let mut i = 0u32;
    while keys.len() < 16 || owned < 8 {
        let key = format!("outage-key-{i}").into_bytes();
        if cluster.collector_of(&key) == CRASHED {
            owned += 1;
        }
        keys.push(key);
        i += 1;
    }
    (keys, owned)
}

#[test]
fn swept_outage_keys_answer_under_every_primitive_and_policy() {
    for primitive in all_primitives() {
        let (mut egress, mut cluster) = rig(primitive);
        let (keys, owned) = outage_keys(&cluster);
        assert!(owned >= 8, "{primitive:?}: rig lost its crash coverage");

        // Crash + detection, then the whole batch lands mid-outage.
        cluster.set_health(CRASHED, CollectorHealth::Crashed);
        flip_liveness(&mut egress, &mut cluster, CRASHED, false);
        let outage_mask = egress.liveness_mask();
        for (i, key) in keys.iter().enumerate() {
            let value = value_for(primitive, i);
            for report in egress.craft(key, &value).unwrap() {
                cluster.deliver(&report.frame);
            }
        }

        // Recover (wiped memory) and run the re-replication sweep the
        // control plane schedules on the dead→alive flip.
        cluster.recover(CRASHED);
        flip_liveness(&mut egress, &mut cluster, CRASHED, true);
        let records = egress.drain_failover_records(CRASHED);
        assert_eq!(records.len(), owned, "{primitive:?}: failover log short");
        let mut tails: Vec<(u64, u32)> = Vec::new();
        if matches!(primitive, PrimitiveSpec::Append { .. }) {
            for ring in 0..primitive.rings(1 << 12) {
                if let Some(tail) = egress.ring_tail(CRASHED, ring) {
                    if tail != 0 {
                        tails.push((ring, tail));
                    }
                }
            }
        }
        cluster.schedule_rerepl(
            CRASHED,
            outage_mask,
            records,
            &tails,
            SweepConfig::default(),
            0,
        );
        let mut now = 0u64;
        while cluster.sweep_active(CRASHED) {
            now += 1;
            assert!(now < 10_000, "{primitive:?}: sweep did not converge");
            for rec in cluster.rerepl_tick(now) {
                egress
                    .set_ring_tail(rec.collector, rec.ring, rec.stored_seq)
                    .unwrap();
            }
        }
        let stats = cluster.rerepl_stats();
        assert_eq!(
            stats.keys_restored, owned as u64,
            "{primitive:?}: sweep restored the wrong key count"
        );
        assert_eq!(stats.keys_abandoned, 0, "{primitive:?}: keys abandoned");

        // The acceptance bar: zero empty returns, zero errors, exact
        // values — every outage key, every policy.
        for (i, key) in keys.iter().enumerate() {
            let expected = value_for(primitive, i);
            for policy in POLICIES {
                match cluster.try_query_with_policy(key, policy) {
                    Ok(QueryOutcome::Answer(bytes)) => assert_eq!(
                        bytes, expected,
                        "{primitive:?}/{policy:?}: wrong value after sweep"
                    ),
                    Ok(QueryOutcome::Empty) => panic!(
                        "{primitive:?}/{policy:?}: outage key {} read empty after sweep",
                        String::from_utf8_lossy(key)
                    ),
                    Err(err) => panic!(
                        "{primitive:?}/{policy:?}: outage key {} errored after sweep: {err:?}",
                        String::from_utf8_lossy(key)
                    ),
                }
            }
            // Keys the sweep carried home narrate their provenance.
            if cluster.collector_of(key) == CRASHED {
                assert!(cluster.key_restored(key), "{primitive:?}: not restored");
                let explain = cluster.try_query_explain(key, ReturnPolicy::FirstMatch);
                let store = explain
                    .candidates
                    .iter()
                    .find(|c| Some(c.collector) == explain.answered_by)
                    .and_then(|c| c.explain.as_ref())
                    .expect("restored key must have an answering store");
                assert!(
                    matches!(store.reason, DecisionReason::RereplicatedCopy { .. }),
                    "{primitive:?}: restored key answered without the \
                     rereplicated_copy narration: {:?}",
                    store.reason
                );
            }
        }
    }
}
