//! The scaling rule of DESIGN.md: every §4/§5 probability depends only
//! on (α, N, b), not on absolute store size — which is what justifies
//! reproducing the paper's 100 M-flow results at 10⁵–10⁶ keys.

use dta_bench::storesim::{run, StoreSimParams};

#[test]
fn success_rate_invariant_across_store_sizes() {
    let alpha = 1.0f64;
    let mut rates = Vec::new();
    for shift in [12u32, 14, 16, 18] {
        let slots = 1u64 << shift;
        let keys = (alpha * slots as f64) as u64;
        let sim = run(
            StoreSimParams {
                slots,
                keys,
                copies: 2,
                seed: 0x5CA1E ^ u64::from(shift),
                ..StoreSimParams::default()
            },
            1,
        );
        rates.push(sim.success_rate());
    }
    let theory = dta_analysis::average_query_success(alpha, 2);
    for (i, rate) in rates.iter().enumerate() {
        assert!(
            (rate - theory).abs() < 0.03,
            "size index {i}: rate {rate} vs theory {theory}"
        );
    }
    // Larger stores converge: the two largest must agree tightly.
    assert!(
        (rates[2] - rates[3]).abs() < 0.01,
        "2^16 vs 2^18: {} vs {}",
        rates[2],
        rates[3]
    );
}

#[test]
fn byte_budget_rule_matches_paper_accounting() {
    // "30 B/flow" at 24-byte slots means M = K·30/24, α = 0.8 — for any K.
    for keys in [50_000u64, 200_000] {
        let slots = keys * 30 / 24;
        let alpha = keys as f64 / slots as f64;
        assert!((alpha - 0.8).abs() < 1e-9);
        let sim = run(
            StoreSimParams {
                slots,
                keys,
                copies: 2,
                seed: keys,
                ..StoreSimParams::default()
            },
            10,
        );
        // Oldest decile ≈ paper's "steep decline to 39.0%" (theory 38.7%
        // at full age; decile midpoint is slightly younger).
        let oldest = sim.age_buckets[0];
        assert!(
            (0.34..0.47).contains(&oldest),
            "keys {keys}: oldest decile {oldest}"
        );
        // Average ≈ 71.4%.
        assert!(
            (sim.success_rate() - 0.71).abs() < 0.03,
            "keys {keys}: avg {}",
            sim.success_rate()
        );
    }
}
