//! Concurrency: many switch threads report through lossy links into one
//! collector thread, with operator queries racing the ingest — the
//! deployment shape of a real collection cluster.

use std::thread;

use direct_telemetry_access::collector::DartCollector;
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::core::query::QueryOutcome;
use direct_telemetry_access::core::store::OwnedQueryEngine;
use direct_telemetry_access::rdma::link::{link, FaultModel};
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};

const SLOTS: u64 = 1 << 14;
const SWITCHES: u32 = 8;
const KEYS_PER_SWITCH: u64 = 500;

fn key(switch: u32, i: u64) -> Vec<u8> {
    // Mix the identifiers so keys have 5-tuple-like entropy. (Dense
    // sequential keys under the linear CRC mapping spread *better* than
    // random — a quasi-random, linear-code effect — which makes success
    // rates land above the Poisson theory. Real keys behave like random.)
    dta_core::hash::hash_bytes(&(u64::from(switch) << 32 | i).to_be_bytes(), 0x5eed)
        .to_be_bytes()
        .to_vec()
}

#[test]
fn parallel_switches_one_collector() {
    let config = DartConfig::builder()
        .slots(SLOTS)
        .copies(2)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let mut collector = DartCollector::new(0, config.clone()).unwrap();

    // One link (and one QP) per switch; crafting happens on the switch's
    // own thread, delivery on the collector thread.
    let mut receivers = Vec::new();
    let mut handles = Vec::new();
    for switch in 0..SWITCHES {
        let endpoint = collector.allocate_switch_qp();
        let (mut tx, rx) = link(FaultModel::Perfect, u64::from(switch));
        receivers.push(rx);
        handles.push(thread::spawn(move || {
            let mut egress = DartEgress::new(
                SwitchIdentity::derived(1000 + switch),
                EgressConfig {
                    copies: 2,
                    slots: SLOTS,
                    layout: SlotLayout {
                        checksum: ChecksumWidth::B32,
                        value_len: 20,
                    },
                    collectors: 1,
                    udp_src_port: 49152,
                    primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
                },
                u64::from(switch) ^ 0xC0,
            )
            .unwrap();
            ControlPlane::new()
                .install_directory(&mut egress, &[endpoint])
                .unwrap();
            for i in 0..KEYS_PER_SWITCH {
                let value = [(i % 251) as u8; 20];
                for copy in 0..2 {
                    let report = egress
                        .craft_report_copy(&key(switch, i), &value, copy)
                        .unwrap();
                    tx.send(report.frame);
                }
            }
            tx.flush();
        }));
    }

    // Collector thread: drain all links until every switch thread is
    // done and every frame is consumed. Interleave queries mid-ingest to
    // prove reads and NIC writes coexist (the region lock is per-access).
    let engine = OwnedQueryEngine::new(config).unwrap();
    let memory = collector.memory().clone();
    let mut delivered = 0u64;
    let expected = u64::from(SWITCHES) * KEYS_PER_SWITCH * 2;
    let mut probes = 0u64;
    while delivered < expected {
        let mut progressed = false;
        for rx in &receivers {
            while let Some(frame) = rx.try_recv() {
                collector.receive_frame(&frame);
                delivered += 1;
                progressed = true;
            }
        }
        // A racing operator query: must never panic or corrupt.
        if delivered > 0 && probes < 64 {
            probes += 1;
            let _ = memory.with(|mem| engine.query(mem, &key(0, 0)).unwrap());
        }
        if !progressed {
            thread::yield_now();
        }
    }
    for handle in handles {
        handle.join().expect("switch thread clean exit");
    }

    // Everything executed, nothing dropped.
    let counters = collector.nic_counters();
    assert_eq!(counters.writes, expected);
    assert_eq!(counters.dropped(), 0, "{counters:?}");

    // Every key queryable (α = 8·500/16384 ≈ 0.24, so allow a few
    // hash-aged losses but no wrong answers).
    let mut correct = 0u64;
    for switch in 0..SWITCHES {
        for i in 0..KEYS_PER_SWITCH {
            match collector.query(&key(switch, i)) {
                QueryOutcome::Answer(v) => {
                    assert_eq!(v, vec![(i % 251) as u8; 20], "wrong answer");
                    correct += 1;
                }
                QueryOutcome::Empty => {}
            }
        }
    }
    let total = u64::from(SWITCHES) * KEYS_PER_SWITCH;
    let rate = correct as f64 / total as f64;
    let theory = dta_analysis::average_query_success(total as f64 / SLOTS as f64, 2);
    assert!(
        (rate - theory).abs() < 0.03,
        "success {rate} vs theory {theory}"
    );
}
