//! 24-bit PSN wraparound and duplicate-frame handling.
//!
//! RoCE PSNs live in a 24-bit circular space: a long-lived switch QP
//! wraps from `0xFF_FFFF` back to `0`, and everything downstream —
//! signed distance, UC gap accounting, duplicate rejection — must treat
//! the wrap as one more increment, not a 16-million-packet rewind.

use direct_telemetry_access::collector::CollectorCluster;
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::rdma::link::{link, FaultModel};
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::topology::sim::{FatTreeSim, SimConfig};
use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};
use direct_telemetry_access::wire::roce::Psn;

#[test]
fn distance_is_circular_across_the_wrap() {
    let top = Psn::new(Psn::MODULUS - 1); // 0xFF_FFFF
    let zero = Psn::new(0);
    // 0 is one *ahead* of 0xFF_FFFF, not 16M behind.
    assert_eq!(zero.distance(top), 1);
    assert_eq!(top.distance(zero), -1);
    // Gaps across the wrap keep their true size.
    assert_eq!(Psn::new(4).distance(Psn::new(Psn::MODULUS - 3)), 7);
    // next()/add() wrap too.
    assert_eq!(top.next(), zero);
    assert_eq!(Psn::new(Psn::MODULUS - 2).add(5), Psn::new(3));
    // Half the space away is the signed boundary.
    assert_eq!(
        Psn::new(Psn::MODULUS / 2).distance(zero),
        -(Psn::MODULUS as i32 / 2)
    );
}

const VALUE_LEN: usize = 20;

/// One egress + cluster pair whose switch QP starts at `start_psn`;
/// also returns that QP's number for counter inspection.
fn rig(start_psn: Psn) -> (DartEgress, CollectorCluster, u32) {
    let config = DartConfig::builder()
        .slots(1024)
        .copies(2)
        .checksum(ChecksumWidth::B32)
        .value_len(VALUE_LEN)
        .collectors(1)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let mut cluster = CollectorCluster::new(config).unwrap();
    let directory = cluster.directory_for_switch_from(start_psn);
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(1),
        EgressConfig {
            copies: 2,
            slots: 1024,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: VALUE_LEN,
            },
            collectors: 1,
            udp_src_port: 49152,
            primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
        },
        7,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &directory)
        .unwrap();
    let qpn = directory[0].qpn;
    (egress, cluster, qpn)
}

/// A QP readied just below the modulus receives a run of frames across
/// the wrap with zero PSN drops and zero phantom gaps.
#[test]
fn uc_receive_path_is_seamless_across_the_wrap() {
    let (mut egress, mut cluster, _qpn) = rig(Psn::new(Psn::MODULUS - 3));
    for i in 0u8..4 {
        let key = [i; 8];
        for copy in 0..2 {
            let report = egress
                .craft_report_copy(&key, &[i; VALUE_LEN], copy)
                .unwrap();
            cluster.deliver(&report.frame);
        }
    }
    // 8 frames spanning 0xFF_FFFD..=0x000004: all accepted in sequence.
    let nic = cluster.collector(0).unwrap().nic_counters();
    assert_eq!(nic.writes, 8);
    assert_eq!(nic.psn, 0, "wrap misread as stale PSNs");
    // The egress register wrapped with them.
    let next = egress
        .craft_report_copy(&[9; 8], &[9; VALUE_LEN], 0)
        .unwrap();
    assert_eq!(next.psn, Psn::new(5));
}

/// UC gap accounting stays exact when the lost frames straddle the
/// wrap: dropping frames 0xFF_FFFE..0x000001 then delivering 0x000002
/// books a gap of 4, not a duplicate.
#[test]
fn uc_gap_accounting_spans_the_wrap() {
    let (mut egress, mut cluster, qpn) = rig(Psn::new(Psn::MODULUS - 2));
    let mut reports = Vec::new();
    for i in 0u8..3 {
        for copy in 0..2 {
            reports.push(
                egress
                    .craft_report_copy(&[i; 8], &[i; VALUE_LEN], copy)
                    .unwrap(),
            );
        }
    }
    // PSNs 0xFF_FFFE, 0xFF_FFFF, 0, 1, 2, 3. Deliver only the first and
    // last: the receiver must resynchronize across the wrap.
    cluster.deliver(&reports[0].frame);
    cluster.deliver(&reports[5].frame);
    let collector = cluster.collector(0).unwrap();
    assert_eq!(collector.nic_counters().writes, 2);
    assert_eq!(collector.nic_counters().psn, 0);
    assert_eq!(
        collector.qp_counters(qpn).map(|c| c.psn_gaps),
        Some(4),
        "gap across the wrap must count the 4 lost frames"
    );
}

/// The duplicate satellite: a duplicating link delivers every frame
/// twice; the UC receive path must apply each write once and drop the
/// replays as stale PSNs.
#[test]
fn duplicated_frames_are_dropped_not_double_applied() {
    let (mut egress, mut cluster, _qpn) = rig(Psn::new(0));
    let (mut tx, rx) = link(FaultModel::Duplicate { prob: 1.0 }, 0xD0B1);
    let frames = 6u64;
    for i in 0..frames {
        let report = egress
            .craft_report_copy(&[i as u8; 8], &[i as u8; VALUE_LEN], 0)
            .unwrap();
        tx.send(report.frame);
    }
    tx.flush();
    while let Some(frame) = rx.try_recv() {
        cluster.deliver(&frame);
    }
    assert_eq!(tx.stats().duplicated, frames, "link must have duplicated");
    let nic = cluster.collector(0).unwrap().nic_counters();
    // Each distinct frame applied exactly once; each replay rejected by
    // its stale PSN.
    assert_eq!(nic.writes, frames);
    assert_eq!(nic.psn, frames);
}

/// End to end: a fat-tree run whose switch QPs all start 16 frames shy
/// of the modulus, so every busy QP crosses the wrap mid-run.
#[test]
fn fattree_run_crosses_the_wrap_unharmed() {
    let mut sim = FatTreeSim::new(SimConfig {
        slots: 1 << 12,
        initial_psn: Psn::MODULUS - 16,
        seed: 0x24B1,
        ..SimConfig::default()
    })
    .unwrap();
    sim.run_flows(300).unwrap();
    let report = sim.query_all(2);
    assert_eq!(report.error, 0);
    assert!(
        report.success_rate() > 0.98,
        "success {}",
        report.success_rate()
    );
    // No frame was misjudged stale by the wrap.
    assert_eq!(sim.cluster().collector(0).unwrap().nic_counters().psn, 0);
}
