//! Append wraparound: the switch-held tail register wraps the full
//! `u32` space while the QP's 24-bit PSN wraps underneath it, both
//! mid-burst.
//!
//! The contract mirrors `psn_wraparound.rs` for the ring layer: a wrap
//! is one more increment, never a rewind. The one entry the design
//! sacrifices is the sequence-number-zero entry at the `u32` tail wrap
//! — stored seq 0 is indistinguishable from "empty", so the reader
//! drops it as a torn head (never serves it wrong).

use direct_telemetry_access::collector::CollectorCluster;
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::{AddressMapping, CrcMapping, MappingKind};
use direct_telemetry_access::core::query::QueryOutcome;
use direct_telemetry_access::core::PrimitiveSpec;
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::topology::sim::{FatTreeSim, SimConfig};
use direct_telemetry_access::wire::roce::Psn;

const VALUE_LEN: usize = 20;
const SLOTS: u64 = 1024;
const CAPACITY: u64 = 4;
/// Ring directory size: a region of `SLOTS` entries holds
/// `SLOTS / CAPACITY` rings.
const RINGS: u64 = SLOTS / CAPACITY;

/// One Append egress + single-collector cluster whose switch QP starts
/// at `start_psn`.
fn rig(start_psn: Psn) -> (DartEgress, CollectorCluster) {
    let config = DartConfig::builder()
        .slots(SLOTS)
        .value_len(VALUE_LEN)
        .collectors(1)
        .mapping(MappingKind::Crc)
        .primitive(PrimitiveSpec::Append {
            ring_capacity: CAPACITY,
        })
        .build()
        .unwrap();
    let layout = config.layout;
    let copies = config.copies;
    let mut cluster = CollectorCluster::new(config).unwrap();
    let directory = cluster.directory_for_switch_from(start_psn);
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(1),
        EgressConfig {
            copies,
            slots: SLOTS,
            layout,
            collectors: 1,
            udp_src_port: 49152,
            primitive: PrimitiveSpec::Append {
                ring_capacity: CAPACITY,
            },
        },
        7,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &directory)
        .unwrap();
    (egress, cluster)
}

/// Append `count` distinguishable entries to `listkey`, delivering every
/// frame; returns the values in append order.
fn burst(
    egress: &mut DartEgress,
    cluster: &mut CollectorCluster,
    listkey: &[u8],
    count: u8,
) -> Vec<Vec<u8>> {
    (1..=count)
        .map(|i| {
            let value = vec![i; VALUE_LEN];
            let report = egress.craft_append(listkey, &value).unwrap();
            cluster.deliver(&report.frame);
            value
        })
        .collect()
}

/// The tail register wraps `u32::MAX → 0` mid-burst: the reader keeps a
/// correctly ordered window and sacrifices exactly the seq-0 entry
/// (aged out, never wrong).
#[test]
fn tail_wrap_sacrifices_only_the_zero_sequence_entry() {
    let (mut egress, mut cluster) = rig(Psn::new(0));
    let listkey = b"wrapping-event-log";
    let ring = CrcMapping::new().slot(listkey, 0, RINGS);

    // Pre-wind the tail register next to the modulus, as a long-lived
    // switch would arrive there: the burst stores seqs
    // MAX-1, MAX, 0, 1, 2, 3.
    egress.set_ring_tail(0, ring, u32::MAX - 2).unwrap();
    let values = burst(&mut egress, &mut cluster, listkey, 6);

    // The switch's register wrapped with the burst.
    assert_eq!(egress.ring_tail(0, ring), Some(3));

    // Seqs 1..=3 survive (the newest lap); the seq-0 entry is the torn
    // head the wrap costs, and MAX-1/MAX were lapped by seqs 2 and 3.
    match cluster.query(listkey) {
        QueryOutcome::Answer(log) => {
            let window: Vec<&[u8]> = log.chunks_exact(VALUE_LEN).collect();
            assert_eq!(window.len(), 3, "exactly the seq-0 entry is lost");
            assert_eq!(window[0], values[3].as_slice());
            assert_eq!(window[1], values[4].as_slice());
            assert_eq!(window[2], values[5].as_slice());
        }
        QueryOutcome::Empty => panic!("the post-wrap window must be readable"),
    }

    // The seq-0 entry's position reads as unoccupied — dropped, not
    // misattributed.
    let explain = cluster.query_explain(listkey);
    let store = explain.candidates[0].explain.as_ref().unwrap();
    let torn: Vec<_> = store.probes.iter().filter(|p| !p.occupied).collect();
    assert_eq!(torn.len(), 1, "one ring position holds the seq-0 entry");
}

/// The acceptance scenario: the 24-bit PSN and the ring tail wrap in
/// the *same* burst, and neither corrupts the other — no frame is
/// misjudged stale, the window stays ordered.
#[test]
fn psn_and_tail_wrap_together_mid_burst() {
    let (mut egress, mut cluster) = rig(Psn::new(Psn::MODULUS - 3));
    let listkey = b"double-wrap-log";
    let ring = CrcMapping::new().slot(listkey, 0, RINGS);
    egress.set_ring_tail(0, ring, u32::MAX - 2).unwrap();

    // 6 frames spanning PSNs 0xFF_FFFD..=0x000002 and seqs MAX-1..=3.
    let values = burst(&mut egress, &mut cluster, listkey, 6);

    // Every frame accepted in sequence: no write lost, no stale verdict.
    let nic = cluster.collector(0).unwrap().nic_counters();
    assert_eq!(nic.writes, 6);
    assert_eq!(nic.appends, 6);
    assert_eq!(nic.psn, 0, "PSN wrap misread as stale frames");

    // Both registers wrapped together.
    assert_eq!(egress.ring_tail(0, ring), Some(3));
    let next = egress.craft_append(listkey, &[9; VALUE_LEN]).unwrap();
    assert_eq!(next.psn, Psn::new(3));

    // The window ordering survived the double wrap (seq-0 sacrificed,
    // then seq 4 = value 9 pushed seq 1 out of the capacity-4 window).
    cluster.deliver(&next.frame);
    match cluster.query(listkey) {
        QueryOutcome::Answer(log) => {
            let window: Vec<&[u8]> = log.chunks_exact(VALUE_LEN).collect();
            assert_eq!(window.len(), 4);
            assert_eq!(window[0], values[3].as_slice());
            assert_eq!(window[1], values[4].as_slice());
            assert_eq!(window[2], values[5].as_slice());
            assert_eq!(window[3], [9u8; VALUE_LEN]);
        }
        QueryOutcome::Empty => panic!("the double-wrap window must be readable"),
    }
}

/// End to end: a fat-tree Append run whose switch QPs all start 16
/// frames shy of the PSN modulus, mirroring
/// `fattree_run_crosses_the_wrap_unharmed` for the ring primitive.
#[test]
fn fattree_append_run_crosses_the_psn_wrap_unharmed() {
    let mut sim = FatTreeSim::new(SimConfig {
        primitive: PrimitiveSpec::Append { ring_capacity: 4 },
        slots: 1 << 12,
        initial_psn: Psn::MODULUS - 16,
        seed: 0x24B1,
        ..SimConfig::default()
    })
    .unwrap();
    sim.run_flows(100).unwrap();
    let report = sim.query_all(2);
    assert_eq!(report.error, 0);
    assert!(
        report.success_rate() >= 0.9,
        "success {}",
        report.success_rate()
    );
    // No frame was misjudged stale by the wrap.
    assert_eq!(sim.cluster().collector(0).unwrap().nic_counters().psn, 0);
}
