//! Collector-failure chaos suite: crash, blackhole and degrade faults
//! under link loss, with switch-side failover and recovery.
//!
//! The robustness contract under test: collector failures may lose
//! telemetry (reads go empty) and may be *unanswerable* during the
//! detection window, but they must never produce a wrong answer, and
//! once the health monitor flips the liveness registers the failover
//! hash must keep new telemetry flowing and queryable.

use std::collections::HashMap;

use direct_telemetry_access::collector::{CollectorCluster, CollectorHealth, SweepConfig};
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::core::query::QueryOutcome;
use direct_telemetry_access::core::PrimitiveSpec;
use direct_telemetry_access::rdma::link::FaultModel;
use direct_telemetry_access::rdma::nic::DropReason;
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::topology::sim::{
    CollectorFault, FatTreeSim, FaultKind, ReportMode, SimConfig, SimReport,
};
use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};
use direct_telemetry_access::wire::FiveTuple;

const CRASHED: u32 = 1;

/// The WRITE-based primitives share one failure contract: lost
/// telemetry reads *empty*, never wrong. (Key-Increment's contract is
/// conservative totals instead — covered by its own scenario below.)
fn write_primitives() -> [PrimitiveSpec; 2] {
    [
        PrimitiveSpec::KeyWrite,
        PrimitiveSpec::Append { ring_capacity: 4 },
    ]
}

fn chaos_config(primitive: PrimitiveSpec, faults: Vec<CollectorFault>) -> SimConfig {
    SimConfig {
        primitive,
        // Append gets a larger ring directory: rings have no copy
        // fan-out, and cross-switch ring sharing (its intrinsic aliasing
        // mode, pinned by the sim's own tests) would otherwise drown the
        // failover signal this suite is after.
        slots: match primitive {
            PrimitiveSpec::Append { .. } => 1 << 12,
            _ => 1 << 10,
        },
        collectors: 4,
        fault: FaultModel::Bernoulli { loss: 0.1 },
        faults,
        seed: 0xC7A0,
        ..SimConfig::default()
    }
}

/// Frames emitted per finished flow: Key-Write reports every copy,
/// Append writes one ring entry. Fault onsets are scheduled in *flow*
/// time (`flows × frames_per_flow`) so every primitive takes the hit at
/// the same point of its run.
fn frames_per_flow(primitive: PrimitiveSpec) -> u64 {
    match primitive {
        PrimitiveSpec::KeyWrite => 2,
        _ => 1,
    }
}

/// Without copy fan-out a single lost WRITE loses the flow, so Append
/// rides the raw link loss while Key-Write's redundancy masks it. The
/// success floors scale accordingly.
fn success_floor(primitive: PrimitiveSpec, key_write_floor: f64) -> f64 {
    match primitive {
        PrimitiveSpec::KeyWrite => key_write_floor,
        _ => key_write_floor - 0.15,
    }
}

fn run(
    primitive: PrimitiveSpec,
    faults: Vec<CollectorFault>,
    flows: u64,
) -> (FatTreeSim, SimReport) {
    let mut sim = FatTreeSim::new(chaos_config(primitive, faults)).unwrap();
    sim.run_flows(flows).unwrap();
    let report = sim.query_all(4);
    (sim, report)
}

/// The acceptance scenario: 4 collectors under 10% link loss, one
/// crashed mid-run. Queries must keep ≥ 90% of the healthy-run success
/// rate, with exactly zero wrong answers throughout — for both
/// WRITE-based primitives through the same failover path.
#[test]
fn crash_under_loss_meets_the_failover_bar() {
    for primitive in write_primitives() {
        let (_, healthy) = run(primitive, Vec::new(), 1000);
        assert_eq!(healthy.error, 0, "{primitive:?}");
        assert_eq!(healthy.unreachable, 0, "{primitive:?}");

        let (sim, chaos) = run(
            primitive,
            vec![CollectorFault {
                index: CRASHED,
                after_frames: 150 * frames_per_flow(primitive),
                kind: FaultKind::Crash,
                recover_after: None,
            }],
            1000,
        );
        // The monitor flipped the liveness registers.
        assert!(!sim.liveness_mask().is_live(CRASHED), "crash undetected");
        // Zero wrong answers, ever. Lost telemetry reads empty instead.
        assert_eq!(chaos.error, 0, "{primitive:?}");
        // At query time failover covers every key: the dead collector's
        // share is answerable from its survivors, so nothing is unreachable.
        assert_eq!(chaos.unreachable, 0, "{primitive:?}");
        // Frames crafted between the crash and its detection died at the
        // crashed host, and the histogram says exactly why.
        assert!(chaos.fault_drops[CRASHED as usize].crashed > 0);
        assert!(chaos.drop_histograms[CRASHED as usize]
            .iter()
            .any(|&(r, n)| r == DropReason::CollectorDown && n > 0));
        // The bar: ≥ 90% of the healthy-run success rate.
        assert!(
            chaos.success_rate() >= 0.9 * healthy.success_rate(),
            "{primitive:?}: chaos {} vs healthy {}",
            chaos.success_rate(),
            healthy.success_rate()
        );
    }
}

/// Key-Increment under the same crash-plus-loss chaos. Its contract is
/// different in kind: totals may *lag* the truth (lost FETCH_ADDs,
/// deltas wiped with the crashed host) but the min-over-copies answer
/// must stay conservative. The one exception is intrinsic to the
/// primitive: counter words carry no key checksum, so two keys sharing
/// a copy word read a merged (inflated) total — bounded here, and
/// everything else must never overcount.
#[test]
fn crash_under_loss_keeps_increments_conservative() {
    let mut sim = FatTreeSim::new(SimConfig {
        mode: ReportMode::PerPacket(3),
        slots: 1 << 12,
        ..chaos_config(
            PrimitiveSpec::KeyIncrement,
            vec![CollectorFault {
                index: CRASHED,
                after_frames: 300,
                kind: FaultKind::Crash,
                recover_after: None,
            }],
        )
    })
    .unwrap();

    // Track the ground-truth totals ourselves: each flow contributes
    // three FETCH_ADD deltas of 1 to its tuple's counter.
    let mut expected: HashMap<FiveTuple, u64> = HashMap::new();
    for _ in 0..400 {
        let tuple = sim.run_flow().unwrap();
        *expected.entry(tuple).or_insert(0) += 3;
    }
    assert!(!sim.liveness_mask().is_live(CRASHED), "crash undetected");

    let mut exact = 0u64;
    let mut lagging = 0u64;
    let mut merged = 0u64;
    for (tuple, &truth) in &expected {
        match sim.query_flow(tuple) {
            QueryOutcome::Empty => lagging += 1,
            QueryOutcome::Answer(bytes) => {
                let total = u64::from_be_bytes(bytes.as_slice().try_into().unwrap());
                if total > truth {
                    merged += 1;
                } else if total < truth {
                    lagging += 1;
                } else {
                    exact += 1;
                }
            }
        }
    }
    // Loss and the crash must leave visible lag — and nothing else.
    assert!(
        lagging > 0,
        "10% loss plus a crash must leave totals lagging"
    );
    assert!(
        merged <= 10,
        "collision merging out of band: {merged} of {} tuples",
        expected.len()
    );
    // Atomics ride RC, and RC is strict: the first PSN lost on a
    // switch→collector QP NAK-gates everything the switch sends it
    // afterwards. Under sustained 10% loss most QPs stop accepting
    // early, so lag dominates — but whatever *is* answered stays exact,
    // and some totals land fully before their QP dies.
    assert!(exact >= 10, "exact {exact} of {}", expected.len());
    // The commit path was atomics-only, with crash damage on record.
    let report = sim.query_all(4);
    assert_eq!(report.nic_writes, 0);
    assert!(report.nic_atomics > 0);
    assert!(report.fault_drops[CRASHED as usize].crashed > 0);
    assert!(report.drop_histograms[CRASHED as usize]
        .iter()
        .any(|&(r, n)| r == DropReason::CollectorDown && n > 0));
}

/// During the detection window a crashed collector's keys surface as
/// *unreachable* (a typed error) — never as a silent wrong answer.
/// This holds for every primitive: reachability is decided before the
/// slot semantics ever run.
#[test]
fn detection_window_errors_are_typed_not_wrong() {
    for primitive in [
        PrimitiveSpec::KeyWrite,
        PrimitiveSpec::Append { ring_capacity: 4 },
        PrimitiveSpec::KeyIncrement,
    ] {
        let mut sim = FatTreeSim::new(chaos_config(primitive, Vec::new())).unwrap();
        let mut tuples = Vec::new();
        for _ in 0..200 {
            tuples.push(sim.run_flow().unwrap());
        }
        // Crash outside the schedule so the monitor has not noticed yet.
        sim.cluster_mut()
            .set_health(CRASHED, CollectorHealth::Crashed);
        let mut unreachable = 0;
        for tuple in &tuples {
            match sim.try_query_flow(tuple) {
                Err(_) => unreachable += 1,
                Ok(QueryOutcome::Answer(_)) | Ok(QueryOutcome::Empty) => {}
            }
        }
        // Roughly a quarter of the keys live on the crashed collector.
        assert!(
            (20..=100).contains(&unreachable),
            "{primitive:?}: unreachable count {unreachable} out of band"
        );
    }
}

/// Blackhole: the NIC eats frames but the host answers queries, so
/// pre-fault telemetry stays readable the whole time.
#[test]
fn blackholed_collector_keeps_serving_old_telemetry() {
    for primitive in write_primitives() {
        let (sim, report) = run(
            primitive,
            vec![CollectorFault {
                index: CRASHED,
                after_frames: 300 * frames_per_flow(primitive),
                kind: FaultKind::Blackhole,
                recover_after: None,
            }],
            600,
        );
        assert!(
            !sim.liveness_mask().is_live(CRASHED),
            "blackhole undetected"
        );
        assert_eq!(report.error, 0, "{primitive:?}");
        // The host is reachable: nothing is unreachable, and frames died
        // with the blackhole reason.
        assert_eq!(report.unreachable, 0, "{primitive:?}");
        assert!(report.fault_drops[CRASHED as usize].blackholed > 0);
        assert!(report.drop_histograms[CRASHED as usize]
            .iter()
            .any(|&(r, n)| r == DropReason::Blackholed && n > 0));
    }
}

/// Degrade: a lossy last hop loses some telemetry but redundancy keeps
/// success high and answers correct.
#[test]
fn degraded_link_loses_frames_not_correctness() {
    for primitive in write_primitives() {
        let (_, report) = run(
            primitive,
            vec![CollectorFault {
                index: CRASHED,
                after_frames: 50 * frames_per_flow(primitive),
                kind: FaultKind::Degrade { loss: 0.5 },
                recover_after: None,
            }],
            800,
        );
        assert_eq!(report.error, 0, "{primitive:?}");
        assert!(report.fault_drops[CRASHED as usize].degraded > 0);
        assert!(
            report.success_rate() > success_floor(primitive, 0.8),
            "{primitive:?}: success {}",
            report.success_rate()
        );
    }
}

/// Crash, recover with wiped memory, keep running: the recovered
/// collector is re-detected as live and the run ends healthy.
#[test]
fn crash_recovery_cycle_ends_healthy() {
    for primitive in write_primitives() {
        let (sim, report) = run(
            primitive,
            vec![CollectorFault {
                index: CRASHED,
                after_frames: 150 * frames_per_flow(primitive),
                kind: FaultKind::Crash,
                recover_after: Some(200 * frames_per_flow(primitive)),
            }],
            1000,
        );
        assert!(
            sim.liveness_mask().is_live(CRASHED),
            "recovery went undetected"
        );
        assert_eq!(sim.cluster().health(CRASHED), CollectorHealth::Healthy);
        assert_eq!(report.error, 0, "{primitive:?}");
        assert!(
            report.success_rate() > success_floor(primitive, 0.7),
            "{primitive:?}: success {}",
            report.success_rate()
        );
    }
}

// ---------------------------------------------------------------------
// Direct switch+cluster scenarios: staleness semantics around a fault.
// ---------------------------------------------------------------------

const VALUE_LEN: usize = 20;

/// One switch egress wired to a 2-collector cluster.
fn switch_and_cluster() -> (DartEgress, CollectorCluster) {
    let config = DartConfig::builder()
        .slots(1024)
        .copies(2)
        .checksum(ChecksumWidth::B32)
        .value_len(VALUE_LEN)
        .collectors(2)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let mut cluster = CollectorCluster::new(config).unwrap();
    let directory = cluster.directory_for_switch();
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(1),
        EgressConfig {
            copies: 2,
            slots: 1024,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: VALUE_LEN,
            },
            collectors: 2,
            udp_src_port: 49152,
            primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
        },
        7,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &directory)
        .unwrap();
    (egress, cluster)
}

fn write(egress: &mut DartEgress, cluster: &mut CollectorCluster, key: &[u8], value: &[u8]) {
    for copy in 0..2 {
        let report = egress.craft_report_copy(key, value, copy).unwrap();
        cluster.deliver(&report.frame);
    }
}

/// Flip one collector's liveness everywhere the mask lives: the switch
/// registers and the query side (what the monitor's push does).
fn flip_liveness(egress: &mut DartEgress, cluster: &mut CollectorCluster, id: u32, live: bool) {
    egress.set_collector_liveness(id, live).unwrap();
    let mut mask = cluster.liveness_mask();
    mask.set_live(id, live);
    cluster.set_liveness_mask(mask);
}

/// Drain the switch's failover log and drive a full re-replication
/// sweep for `primary` to completion — the control-plane reaction to a
/// dead→alive flip, inlined for the direct rig.
fn run_sweep(
    egress: &mut DartEgress,
    cluster: &mut CollectorCluster,
    primary: u32,
    outage_mask: direct_telemetry_access::core::hash::LivenessMask,
    config: SweepConfig,
) {
    let records = egress.drain_failover_records(primary);
    cluster.schedule_rerepl(primary, outage_mask, records, &[], config, 0);
    let mut now = 0;
    while cluster.sweep_active(primary) {
        now += 1;
        assert!(now < 10_000, "sweep did not converge");
        for rec in cluster.rerepl_tick(now) {
            egress
                .set_ring_tail(rec.collector, rec.ring, rec.stored_seq)
                .unwrap();
        }
    }
}

/// The wiped-memory guarantee: after a crash restart, a key re-written
/// post-recovery answers with the new value and the pre-crash value is
/// never seen again.
#[test]
fn recovery_never_serves_stale_pre_crash_values() {
    let (mut egress, mut cluster) = switch_and_cluster();
    let key = b"stale-check-key";
    let primary = cluster.collector_of(key);

    let v1 = [0x11; VALUE_LEN];
    write(&mut egress, &mut cluster, key, &v1);
    assert_eq!(cluster.query(key), QueryOutcome::Answer(v1.to_vec()));

    // Crash + detection.
    cluster.set_health(primary, CollectorHealth::Crashed);
    flip_liveness(&mut egress, &mut cluster, primary, false);
    let outage_mask = egress.liveness_mask();

    // Writes during the outage land at the failover target and answer.
    let v2 = [0x22; VALUE_LEN];
    write(&mut egress, &mut cluster, key, &v2);
    assert_eq!(cluster.query(key), QueryOutcome::Answer(v2.to_vec()));

    // Recovery wipes the crashed host; the control plane revives it.
    cluster.recover(primary);
    flip_liveness(&mut egress, &mut cluster, primary, true);

    // The pre-crash value is gone with the wipe, and until the sweep
    // lands the outage-era value is stranded at the failover target
    // (shadowed by the live primary) — but *stale* data never surfaces.
    assert_eq!(cluster.query(key), QueryOutcome::Empty);

    // The re-replication sweep copies the outage-era value home.
    run_sweep(
        &mut egress,
        &mut cluster,
        primary,
        outage_mask,
        SweepConfig::default(),
    );
    assert_eq!(cluster.query(key), QueryOutcome::Answer(v2.to_vec()));
    assert!(cluster.key_restored(key));

    // Re-written post-recovery: the fresh value, nothing older.
    let v3 = [0x33; VALUE_LEN];
    write(&mut egress, &mut cluster, key, &v3);
    assert_eq!(cluster.query(key), QueryOutcome::Answer(v3.to_vec()));
}

/// The double-fault guarantee: a primary that crashes *again* mid-sweep
/// never loses the last surviving copy. Tombstoning is ACK-gated and
/// deferred to sweep completion, so an aborted sweep leaves every
/// failover copy intact and parks every record for the next recovery.
#[test]
fn double_fault_mid_sweep_never_loses_the_last_copy() {
    let (mut egress, mut cluster) = switch_and_cluster();

    // A handful of keys that all live on one primary, written only
    // while that primary is down.
    let primary = cluster.collector_of(b"df-key-0");
    let mut keys = Vec::new();
    let mut i = 0u32;
    while keys.len() < 6 {
        let key = format!("df-key-{i}").into_bytes();
        if cluster.collector_of(&key) == primary {
            keys.push(key);
        }
        i += 1;
    }

    cluster.set_health(primary, CollectorHealth::Crashed);
    flip_liveness(&mut egress, &mut cluster, primary, false);
    let outage_mask = egress.liveness_mask();
    let value = [0x5A; VALUE_LEN];
    for key in &keys {
        write(&mut egress, &mut cluster, key, &value);
        assert_eq!(cluster.query(key), QueryOutcome::Answer(value.to_vec()));
    }

    // Recover; the sweep starts, one key per batch.
    cluster.recover(primary);
    flip_liveness(&mut egress, &mut cluster, primary, true);
    let records = egress.drain_failover_records(primary);
    assert_eq!(records.len(), keys.len());
    cluster.schedule_rerepl(
        primary,
        outage_mask,
        records,
        &[],
        SweepConfig {
            batch_size: 1,
            pacing: 1,
            ..SweepConfig::default()
        },
        0,
    );
    cluster.rerepl_tick(1);
    assert!(cluster.sweep_active(primary), "sweep finished too early");
    let mid = cluster.rerepl_stats();
    assert_eq!(mid.slots_copied, 2, "one key × two copies written back");
    assert_eq!(mid.slots_tombstoned, 0, "tombstoned before completion");

    // Second crash, mid-sweep: the sweep aborts and parks everything —
    // including the key it already wrote back, whose primary copies
    // just died with the host.
    cluster.set_health(primary, CollectorHealth::Crashed);
    flip_liveness(&mut egress, &mut cluster, primary, false);
    cluster.rerepl_tick(2);
    assert!(!cluster.sweep_active(primary), "aborted sweep still alive");
    assert_eq!(cluster.parked_records(primary), keys.len());

    // No value lost: every failover copy survived the aborted sweep.
    for key in &keys {
        assert_eq!(
            cluster.query(key),
            QueryOutcome::Answer(value.to_vec()),
            "double fault lost the last copy"
        );
    }

    // The next recovery replays the parked records to completion.
    cluster.recover(primary);
    flip_liveness(&mut egress, &mut cluster, primary, true);
    run_sweep(
        &mut egress,
        &mut cluster,
        primary,
        outage_mask,
        SweepConfig::default(),
    );
    for key in &keys {
        assert_eq!(cluster.query(key), QueryOutcome::Answer(value.to_vec()));
        assert!(cluster.key_restored(key));
    }
    let stats = cluster.rerepl_stats();
    assert_eq!(stats.keys_restored, keys.len() as u64);
    assert_eq!(stats.slots_tombstoned, 2 * keys.len() as u64);
}

/// A degraded (lossy) last hop is not a reason to abort: the sweep
/// pushes through with its retry budget, and when that budget runs out
/// the record parks instead of vanishing. Every aborted write-back is
/// accounted for in the primary's drop-reason histogram.
#[test]
fn degraded_sweep_aborts_are_accounted_and_parked() {
    let (mut egress, mut cluster) = switch_and_cluster();
    let key = b"degraded-sweep-key";
    let primary = cluster.collector_of(key);

    cluster.set_health(primary, CollectorHealth::Crashed);
    flip_liveness(&mut egress, &mut cluster, primary, false);
    let outage_mask = egress.liveness_mask();
    let value = [0x77; VALUE_LEN];
    write(&mut egress, &mut cluster, key, &value);

    // Recover into a fully lossy last hop: every write-back drops.
    cluster.recover(primary);
    cluster.set_health(primary, CollectorHealth::Degraded { loss: 1.0 });
    flip_liveness(&mut egress, &mut cluster, primary, true);
    let records = egress.drain_failover_records(primary);
    cluster.schedule_rerepl(
        primary,
        outage_mask,
        records,
        &[],
        SweepConfig {
            batch_size: 4,
            pacing: 1,
            max_retries: 2,
            retry_backoff: 1,
        },
        0,
    );
    let mut now = 0;
    while cluster.sweep_active(primary) {
        now += 1;
        assert!(now < 1000, "exhausted sweep did not terminate");
        cluster.rerepl_tick(now);
    }

    let stats = cluster.rerepl_stats();
    // One aborted write-back per attempt: the first try plus each retry.
    assert_eq!(stats.writebacks_aborted, 3);
    assert_eq!(stats.keys_restored, 0);
    assert_eq!(
        stats.slots_tombstoned, 0,
        "no tombstone without an ACKed write-back"
    );
    // The record parked — the failover copy is shadowed but not lost.
    assert_eq!(cluster.parked_records(primary), 1);
    // The histogram at the primary accounts for every aborted frame.
    let degraded: u64 = cluster
        .drop_histogram(primary)
        .iter()
        .filter(|(r, _)| *r == DropReason::DegradedLink)
        .map(|&(_, n)| n)
        .sum();
    assert_eq!(degraded, stats.writebacks_aborted);
}

/// Freshness ordering while blackholed: the primary still holds (and
/// would serve) the old value, but the mask routes writes to the
/// failover target — so reads must prefer it too.
#[test]
fn failover_reads_shadow_stale_blackholed_primary() {
    let (mut egress, mut cluster) = switch_and_cluster();
    let key = b"freshness-key";
    let primary = cluster.collector_of(key);

    let v1 = [0xAA; VALUE_LEN];
    write(&mut egress, &mut cluster, key, &v1);

    // Blackhole: host up (still answers queries!) but NIC dead.
    cluster.set_health(primary, CollectorHealth::Blackholed);
    flip_liveness(&mut egress, &mut cluster, primary, false);

    let v2 = [0xBB; VALUE_LEN];
    write(&mut egress, &mut cluster, key, &v2);

    // Both locations are reachable; the failover target is fresher and
    // must win. Returning v1 here would be a stale read.
    assert_eq!(cluster.query(key), QueryOutcome::Answer(v2.to_vec()));
}

// ---------------------------------------------------------------------
// Soak scenarios (slow; run with `cargo test --release -- --ignored`).
// ---------------------------------------------------------------------

/// Long crash/recover cycles under combined loss + reordering.
#[test]
#[ignore = "chaos soak: long-running, exercised by the chaos-soak CI job"]
fn soak_crash_cycles_under_lossy_reordering() {
    let mut sim = FatTreeSim::new(SimConfig {
        slots: 1 << 12,
        collectors: 4,
        fault: FaultModel::LossyReorder {
            loss: 0.05,
            prob: 0.2,
        },
        // Two crash/wipe cycles per collector, all inside the first 40%
        // of the run: the tail measures how collection recovers.
        faults: (0..8u64)
            .map(|i| CollectorFault {
                index: (i % 4) as u32,
                after_frames: 400 + i * 450,
                kind: FaultKind::Crash,
                recover_after: Some(400),
            })
            .collect(),
        seed: 0x50AC,
        ..SimConfig::default()
    })
    .unwrap();
    sim.run_flows(5000).unwrap();
    let report = sim.query_all(8);
    assert_eq!(report.error, 0, "soak produced wrong answers");
    // Every crash wipes that collector, so telemetry from before its
    // last restart is *supposed* to be gone (~40% of the run's keys);
    // everything written after the last recovery must survive.
    assert!(
        report.success_rate() > 0.5,
        "soak success {} collapsed",
        report.success_rate()
    );
    let last = *report.age_buckets.last().unwrap();
    assert!(
        last > 0.9,
        "post-recovery telemetry must be queryable, newest bucket {last}"
    );
    // Every collector took crash damage at some point.
    for id in 0..4 {
        assert!(report.fault_drops[id].crashed > 0, "collector {id} unhurt");
    }
    // All recovered by the end.
    for id in 0..4u32 {
        assert_eq!(sim.cluster().health(id), CollectorHealth::Healthy);
        assert!(sim.liveness_mask().is_live(id));
    }
}

/// Bursty (Gilbert-Elliott) loss with a mid-run blackhole.
#[test]
#[ignore = "chaos soak: long-running, exercised by the chaos-soak CI job"]
fn soak_bursty_loss_with_blackhole() {
    let mut sim = FatTreeSim::new(SimConfig {
        slots: 1 << 12,
        collectors: 4,
        fault: FaultModel::GilbertElliott {
            to_bad: 0.02,
            to_good: 0.3,
            loss_good: 0.01,
            loss_bad: 0.6,
        },
        faults: vec![CollectorFault {
            index: 2,
            after_frames: 2000,
            kind: FaultKind::Blackhole,
            recover_after: Some(1500),
        }],
        seed: 0xB0B5,
        ..SimConfig::default()
    })
    .unwrap();
    sim.run_flows(4000).unwrap();
    let report = sim.query_all(8);
    assert_eq!(report.error, 0);
    assert!(report.link.burst_drops > 0, "bursty loss never burst");
    assert!(report.fault_drops[2].blackholed > 0);
    assert!(
        report.success_rate() > 0.7,
        "soak success {}",
        report.success_rate()
    );
}
