//! Property test for the explain contract: `query` and `query_explain`
//! can never disagree — on the answer, or on the reason given for it —
//! no matter what store the fabric built.
//!
//! The plain query *is* the explain path minus the trace (both
//! `StoreView::query_with_policy` and `CollectorCluster::
//! try_query_with_policy` are thin wrappers over their explain
//! counterparts), so this test is the tripwire that keeps any future
//! "fast path" from drifting: random report streams through the real
//! egress → lossy link → NIC pipeline, random collector faults, every
//! return policy, all three translation primitives — and for every key
//! the two paths must return the identical outcome while the narrated
//! [`DecisionReason`] stays coherent with it.

use direct_telemetry_access::collector::{CollectorCluster, CollectorHealth, SweepConfig};
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::core::primitive::{increment_encode, PrimitiveSpec};
use direct_telemetry_access::core::query::{DecisionReason, QueryOutcome, ReturnPolicy};
use direct_telemetry_access::core::store::StoreExplain;
use direct_telemetry_access::rdma::link::{link, FaultModel};
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Small store so random keys collide hard and every decision reason
/// (conflicts, ties, below-consensus) actually gets exercised.
const SLOTS: u64 = 64;
/// Distinct keys the generated operations draw from.
const KEYS: usize = 6;
const COLLECTORS: u32 = 2;

/// Every policy the decision layer implements.
const POLICIES: [ReturnPolicy; 4] = [
    ReturnPolicy::UniqueValue,
    ReturnPolicy::FirstMatch,
    ReturnPolicy::Plurality,
    ReturnPolicy::Consensus(2),
];

fn primitive_from(index: usize) -> PrimitiveSpec {
    [
        PrimitiveSpec::KeyWrite,
        PrimitiveSpec::Append { ring_capacity: 4 },
        PrimitiveSpec::KeyIncrement,
    ][index]
}

fn key_bytes(index: usize) -> Vec<u8> {
    format!("prop-key-{index}").into_bytes()
}

/// One switch egress + cluster pair under `primitive`, wired through the
/// control plane like the sim does.
fn rig(primitive: PrimitiveSpec) -> (DartEgress, CollectorCluster) {
    let config = DartConfig::builder()
        .slots(SLOTS)
        .value_len(12)
        .copies(2)
        .collectors(COLLECTORS)
        .mapping(MappingKind::Crc)
        .primitive(primitive)
        .build()
        .unwrap();
    let layout = config.layout;
    let copies = config.copies;
    let mut cluster = CollectorCluster::new(config).unwrap();
    let directory = cluster.directory_for_switch();
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(1),
        EgressConfig {
            copies,
            slots: SLOTS,
            layout,
            collectors: COLLECTORS,
            udp_src_port: 49152,
            primitive,
        },
        7,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &directory)
        .unwrap();
    (egress, cluster)
}

/// The report value byte `b` turns into under each primitive:
/// fixed-width slot/ring values for the WRITE primitives, an 8-byte
/// big-endian delta for Key-Increment.
fn value_for(primitive: PrimitiveSpec, value_len: usize, b: u8) -> Vec<u8> {
    match primitive {
        PrimitiveSpec::KeyIncrement => increment_encode(1 + u64::from(b)).to_vec(),
        _ => vec![b; value_len],
    }
}

/// The reason must describe the outcome it rode in with: `Answered`
/// narrates exactly the answers, every abstention reason narrates
/// exactly the empties — and each abstention variant may only come from
/// the policies that can produce it. The vote threshold is a Key-Write
/// notion: Append windows and Key-Increment minima answer by their own
/// semantics and report their evidence count as `votes`.
fn assert_store_coherent(
    primitive: PrimitiveSpec,
    store: &StoreExplain,
) -> Result<(), TestCaseError> {
    match &store.reason {
        DecisionReason::Answered { votes } => {
            prop_assert!(
                matches!(store.outcome, QueryOutcome::Answer(_)),
                "answered reason with outcome {:?}",
                store.outcome
            );
            prop_assert!(*votes > 0, "an answer needs evidence");
            if let (PrimitiveSpec::KeyWrite, ReturnPolicy::Consensus(needed)) =
                (primitive, store.policy)
            {
                prop_assert!(*votes >= needed, "consensus answered below threshold");
            }
        }
        DecisionReason::RereplicatedCopy { votes } => {
            // A restored primary answers like any other store — the
            // reason only narrates that the copies survived an outage
            // via the sweep, so it inherits every `Answered` invariant.
            prop_assert!(
                matches!(store.outcome, QueryOutcome::Answer(_)),
                "rereplicated_copy reason with outcome {:?}",
                store.outcome
            );
            prop_assert!(*votes > 0, "a restored answer needs evidence");
            if let (PrimitiveSpec::KeyWrite, ReturnPolicy::Consensus(needed)) =
                (primitive, store.policy)
            {
                prop_assert!(*votes >= needed, "consensus answered below threshold");
            }
        }
        DecisionReason::NoSlotMatched => {
            prop_assert_eq!(&store.outcome, &QueryOutcome::Empty);
            prop_assert_eq!(store.matched(), 0, "no_slot_matched with matches");
        }
        DecisionReason::ConflictingValues => {
            prop_assert_eq!(&store.outcome, &QueryOutcome::Empty);
            prop_assert_eq!(store.policy, ReturnPolicy::UniqueValue);
        }
        DecisionReason::PluralityTie => {
            prop_assert_eq!(&store.outcome, &QueryOutcome::Empty);
            // Consensus also abstains with a tie when no strict winner
            // exists to count votes for.
            prop_assert!(
                matches!(
                    store.policy,
                    ReturnPolicy::Plurality | ReturnPolicy::Consensus(_)
                ),
                "plurality_tie from {:?}",
                store.policy
            );
        }
        DecisionReason::BelowConsensus { needed, got } => {
            prop_assert_eq!(&store.outcome, &QueryOutcome::Empty);
            prop_assert!(matches!(store.policy, ReturnPolicy::Consensus(n) if n == *needed));
            prop_assert!(got < needed, "below_consensus with enough votes");
        }
    }
    Ok(())
}

/// The whole explain contract, checked for every key under every
/// policy: identical outcomes on both paths, attribution in step with
/// the answer, and a coherent narrated reason in every consulted store.
/// Runs repeatedly — after ingest, mid-outage, and at every sweep batch
/// boundary — so no phase of the failover lifecycle escapes it.
fn assert_paths_agree(
    primitive: PrimitiveSpec,
    cluster: &mut CollectorCluster,
) -> Result<(), TestCaseError> {
    for key_index in 0..KEYS {
        let key = key_bytes(key_index);
        for policy in POLICIES {
            let explain = cluster.try_query_explain(&key, policy);
            let plain = cluster.try_query_with_policy(&key, policy);

            // The contract: identical outcome, both calls.
            prop_assert_eq!(
                &plain,
                &explain.outcome,
                "paths diverged under {:?}/{:?}",
                primitive,
                policy
            );

            // `answered_by` names a collector exactly when there is
            // an answer to attribute.
            prop_assert_eq!(
                explain.answered_by.is_some(),
                matches!(explain.outcome, Ok(QueryOutcome::Answer(_))),
                "answered_by out of step with the outcome"
            );

            // Every consulted store narrated a reason coherent with
            // its own outcome and the policy in force; unreachable
            // candidates carry no trace at all.
            for candidate in &explain.candidates {
                prop_assert_eq!(
                    candidate.explain.is_some(),
                    candidate.reachable,
                    "probe trace shape broken"
                );
                if let Some(store) = &candidate.explain {
                    prop_assert_eq!(store.policy, policy);
                    // The restored-copy narration may only appear on
                    // keys a completed sweep actually restored.
                    if matches!(store.reason, DecisionReason::RereplicatedCopy { .. }) {
                        prop_assert!(
                            cluster.key_restored(&key),
                            "rereplicated_copy narrated for an unswept key"
                        );
                    }
                    assert_store_coherent(primitive, store)?;
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn query_and_explain_never_disagree(
        primitive_index in 0usize..3,
        ops in collection::vec((0usize..KEYS, any::<u8>()), 1..32),
        loss_pct in 0u32..=40,
        link_seed in any::<u64>(),
        // 0 = all healthy, 1 = one collector crashed, 2 = blackholed.
        fault_kind in 0u8..3,
        fault_index in 0u32..COLLECTORS,
        // Recovery phase: the ops written while the primary is down and
        // the sweep batch size — small and random, so the batch
        // boundaries the contract is re-checked at move around.
        outage_ops in collection::vec((0usize..KEYS, any::<u8>()), 1..16),
        sweep_batch in 1usize..4,
    ) {
        let primitive = primitive_from(primitive_index);
        let (mut egress, mut cluster) = rig(primitive);
        let value_len = egress.config().layout.value_len;

        // Random reports through the real pipeline, under random loss.
        let model = if loss_pct == 0 {
            FaultModel::Perfect
        } else {
            FaultModel::Bernoulli { loss: f64::from(loss_pct) / 100.0 }
        };
        let (mut tx, rx) = link(model, link_seed);
        for (key_index, byte) in &ops {
            let key = key_bytes(*key_index);
            let value = value_for(primitive, value_len, *byte);
            for report in egress.craft(&key, &value).unwrap() {
                tx.send(report.frame);
            }
        }
        tx.flush();
        for frame in rx.drain() {
            cluster.deliver(&frame);
        }

        // Optionally knock a collector out *after* ingest, so queries
        // also exercise the unreachable / failover arms of explain.
        match fault_kind {
            1 => cluster.set_health(fault_index, CollectorHealth::Crashed),
            2 => cluster.set_health(fault_index, CollectorHealth::Blackholed),
            _ => {}
        }

        assert_paths_agree(primitive, &mut cluster)?;

        // ── Recovery phase: crash a primary, keep writing through the
        // failover path, recover it, then drive the re-replication
        // sweep to completion — re-checking the whole explain contract
        // mid-outage and at every sweep batch boundary, including the
        // new `RereplicatedCopy` narration on restored keys. ──
        let victim = fault_index;
        cluster.set_health(victim, CollectorHealth::Crashed);
        egress.set_collector_liveness(victim, false).unwrap();
        let outage_mask = egress.liveness_mask();
        cluster.set_liveness_mask(outage_mask);

        let (mut tx, rx) = link(model, link_seed.wrapping_add(1));
        for (key_index, byte) in &outage_ops {
            let key = key_bytes(*key_index);
            let value = value_for(primitive, value_len, *byte);
            for report in egress.craft(&key, &value).unwrap() {
                tx.send(report.frame);
            }
        }
        tx.flush();
        for frame in rx.drain() {
            cluster.deliver(&frame);
        }
        assert_paths_agree(primitive, &mut cluster)?;

        cluster.recover(victim);
        egress.set_collector_liveness(victim, true).unwrap();
        cluster.set_liveness_mask(egress.liveness_mask());
        let records = egress.drain_failover_records(victim);
        let mut tails: Vec<(u64, u32)> = Vec::new();
        if matches!(primitive, PrimitiveSpec::Append { .. }) {
            for ring in 0..primitive.rings(SLOTS) {
                if let Some(tail) = egress.ring_tail(victim, ring) {
                    if tail != 0 {
                        tails.push((ring, tail));
                    }
                }
            }
        }
        cluster.schedule_rerepl(
            victim,
            outage_mask,
            records,
            &tails,
            SweepConfig {
                batch_size: sweep_batch,
                pacing: 1,
                ..SweepConfig::default()
            },
            0,
        );
        let mut now = 0u64;
        while cluster.sweep_active(victim) {
            now += 1;
            prop_assert!(now < 10_000, "sweep failed to converge");
            for rec in cluster.rerepl_tick(now) {
                egress
                    .set_ring_tail(rec.collector, rec.ring, rec.stored_seq)
                    .unwrap();
            }
            // The two paths may never disagree, even between batches of
            // a half-finished sweep.
            assert_paths_agree(primitive, &mut cluster)?;
        }
        assert_paths_agree(primitive, &mut cluster)?;
    }
}
