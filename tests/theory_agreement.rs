//! §4 ↔ §5 agreement: Monte-Carlo simulation pinned against the
//! closed-form analysis across the parameter grid.

use dta_bench::storesim::{run, StoreSimParams};
use dta_bench::theory::run_point;
use dta_bench::Scale;

#[test]
fn average_success_tracks_theory_across_loads_and_redundancy() {
    let slots = 1u64 << 15;
    for n in [1u8, 2, 3, 4] {
        for alpha in [0.25f64, 0.5, 1.0, 2.0] {
            let keys = (alpha * slots as f64) as u64;
            let sim = run(
                StoreSimParams {
                    slots,
                    keys,
                    copies: n,
                    ..StoreSimParams::default()
                },
                1,
            );
            let theory = dta_analysis::average_query_success(alpha, u32::from(n));
            assert!(
                (sim.success_rate() - theory).abs() < 0.02,
                "N={n} α={alpha}: sim {} vs theory {theory}",
                sim.success_rate()
            );
        }
    }
}

#[test]
fn aging_curve_matches_pointwise_formula() {
    // Bucket b of B spans ages [(B-b-1)/B·α, (B-b)/B·α]; compare each
    // bucket midpoint against the §4 point formula.
    let slots = 1u64 << 15;
    let alpha = 1.5f64;
    let keys = (alpha * slots as f64) as u64;
    let buckets = 10usize;
    let sim = run(
        StoreSimParams {
            slots,
            keys,
            copies: 2,
            ..StoreSimParams::default()
        },
        buckets,
    );
    for (b, &observed) in sim.age_buckets.iter().enumerate() {
        // Bucket b holds keys inserted in [b/B, (b+1)/B) of the run;
        // their age is alpha * (1 - position).
        let midpoint_age = alpha * (1.0 - (b as f64 + 0.5) / buckets as f64);
        let predicted = dta_analysis::query_success(midpoint_age, 2);
        assert!(
            (observed - predicted).abs() < 0.03,
            "bucket {b}: observed {observed} vs predicted {predicted}"
        );
    }
}

#[test]
fn empty_return_probability_within_analysis() {
    for &(alpha, n, bits) in &[(0.5f64, 2u8, 8u32), (1.0, 2, 8), (1.0, 3, 16), (2.0, 4, 8)] {
        let p = run_point(alpha, n, bits, 1 << 15, 20_000, 99);
        // run_point's prediction integrates the §4 formulas over the
        // victims' age range; the observation must track it closely
        // (the prediction uses the ambiguity *lower* bound, so allow a
        // slightly wider band above).
        assert!(
            (p.empty_observed - p.empty_predicted).abs() < 0.02,
            "α={alpha} N={n} b={bits}: observed {} vs predicted {}",
            p.empty_observed,
            p.empty_predicted
        );
    }
}

#[test]
fn return_errors_within_bounds_at_8_bits() {
    let p = run_point(2.0, 2, 8, 1 << 14, 60_000, 7);
    assert!(
        p.error_observed >= p.error_lower * 0.4,
        "observed {} far below lower bound {}",
        p.error_observed,
        p.error_lower
    );
    assert!(
        p.error_observed <= p.error_upper * 1.6 + 1e-4,
        "observed {} above upper bound {}",
        p.error_observed,
        p.error_upper
    );
}

#[test]
fn thirty_two_bit_checksums_produce_no_observable_errors() {
    // §5.3: "Our simulations with 32-bit key-checksums fail to reproduce
    // return-error cases, due to their very low probability."
    let sim = run(
        StoreSimParams {
            slots: Scale(1).slots_for_load(2.0).next_power_of_two(),
            keys: Scale(1).keys() * 2,
            copies: 2,
            ..StoreSimParams::default()
        },
        1,
    );
    assert_eq!(sim.error, 0);
}
