//! Cross-layer metric identities: the observability registry, the NIC's
//! own counters, the event ring, and the `SimReport` tallies must all
//! tell the same story — and query-explain must classify forced empty
//! returns and forced return errors exactly as §4 predicts.

use direct_telemetry_access::collector::CollectorCluster;
use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::{AddressMapping, CrcMapping, MappingKind};
use direct_telemetry_access::core::query::{classify, QueryClass, QueryOutcome, ReturnPolicy};
use direct_telemetry_access::core::PrimitiveSpec;
use direct_telemetry_access::obs::{EventKind, Obs};
use direct_telemetry_access::topology::sim::{FatTreeSim, SimConfig};
use direct_telemetry_access::wire::{ethernet, ipv4};

/// The three translation primitives every sim-level identity is checked
/// under. One shared code path (egress → link → NIC → store) means one
/// shared metric story.
fn primitives() -> [PrimitiveSpec; 3] {
    [
        PrimitiveSpec::KeyWrite,
        PrimitiveSpec::Append { ring_capacity: 4 },
        PrimitiveSpec::KeyIncrement,
    ]
}

/// An overloaded small-store sim (256 slots, 512 flows) with the ring
/// attached, for the cross-layer counter identities.
fn overloaded_sim(primitive: PrimitiveSpec, obs: Obs) -> FatTreeSim {
    let mut sim = FatTreeSim::new_with_obs(
        SimConfig {
            primitive,
            slots: 256,
            seed: 0xC0,
            ..SimConfig::default()
        },
        obs,
    )
    .unwrap();
    sim.run_flows(512).unwrap();
    sim
}

/// The WRITE-path identity, shared by Key-Write and Append (an Append
/// commit *is* an RDMA WRITE, tagged by the region's commit kind): the
/// registry's fresh/overwritten split, the NIC's own counters, and the
/// event ring must all agree on the same write total.
fn assert_write_identities(sim: &FatTreeSim, obs: &Obs) {
    let registry = obs.registry();
    let fresh = registry
        .counter_value("dta_nic_writes_fresh_total")
        .unwrap();
    let overwritten = registry
        .counter_value("dta_nic_writes_overwritten_total")
        .unwrap();
    assert!(overwritten > 0, "overload must force overwrites");

    // Identity: the per-stage registry counters sum to the NIC total…
    let nic_writes = sim.cluster().total_writes();
    assert_eq!(fresh + overwritten, nic_writes);

    // …agree with the NIC's own fresh/overwrite split…
    let counters = sim.cluster().collector(0).unwrap().nic_counters();
    assert_eq!(counters.writes_fresh, fresh);
    assert_eq!(counters.writes_overwritten, overwritten);
    assert_eq!(counters.writes, nic_writes);

    // …and with the event ring, event by event.
    let writes = obs.ring().events_named("slot_write");
    assert_eq!(writes.len() as u64, nic_writes);
    let fresh_events = writes
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SlotWrite { fresh: true, .. }))
        .count();
    assert_eq!(fresh_events as u64, fresh);
}

#[test]
fn write_counters_agree_across_layers() {
    let obs = Obs::with_capacity(1 << 16);
    let sim = overloaded_sim(PrimitiveSpec::KeyWrite, obs.clone());
    assert_write_identities(&sim, &obs);
    // A pure Key-Write run commits nothing through the other kinds.
    assert_eq!(sim.cluster().total_appends(), 0);
    assert_eq!(sim.cluster().total_atomics(), 0);
}

#[test]
fn append_counters_agree_across_layers() {
    let obs = Obs::with_capacity(1 << 16);
    let sim = overloaded_sim(PrimitiveSpec::Append { ring_capacity: 4 }, obs.clone());
    assert_write_identities(&sim, &obs);
    // Every ring commit is an append — counted as a subset of writes —
    // and none of them is an atomic.
    assert_eq!(sim.cluster().total_appends(), sim.cluster().total_writes());
    assert_eq!(sim.cluster().total_atomics(), 0);
}

#[test]
fn increment_counters_agree_across_layers() {
    let obs = Obs::with_capacity(1 << 16);
    let sim = overloaded_sim(PrimitiveSpec::KeyIncrement, obs.clone());

    // Key-Increment commits through FETCH_ADD only: no WRITEs anywhere.
    assert_eq!(sim.cluster().total_writes(), 0);
    assert_eq!(sim.cluster().total_appends(), 0);
    assert!(obs.ring().events_named("slot_write").is_empty());

    // The atomic identity: registry counter == NIC fetch-add total ==
    // counter-commit events, one per executed FETCH_ADD.
    let atomics = sim.cluster().total_atomics();
    assert!(atomics > 0, "the run must commit increments");
    let registry = obs.registry();
    assert_eq!(
        registry.counter_value("dta_nic_atomics_total"),
        Some(atomics)
    );
    let commits = obs.ring().events_named("counter_commit");
    assert_eq!(commits.len() as u64, atomics);
    assert!(
        commits
            .iter()
            .any(|e| matches!(e.kind, EventKind::CounterCommit { original, .. } if original > 0)),
        "an overloaded counter store must see non-first increments"
    );
}

#[test]
fn query_outcome_counters_sum_to_total() {
    for primitive in primitives() {
        let obs = Obs::new();
        let mut sim = FatTreeSim::new_with_obs(
            SimConfig {
                primitive,
                slots: 256,
                collectors: 2,
                seed: 0xC1,
                ..SimConfig::default()
            },
            obs.clone(),
        )
        .unwrap();
        sim.run_flows(400).unwrap();
        let report = sim.query_all(4);
        assert_eq!(
            report.correct + report.empty + report.error + report.unreachable,
            report.total()
        );
        // The registry's four outcome counters partition the same total.
        let registry = obs.registry();
        let folded: u64 = ["correct", "empty", "error", "unreachable"]
            .iter()
            .map(|k| {
                registry
                    .counter_value(&format!("dta_sim_queries_{k}_total"))
                    .unwrap()
            })
            .sum();
        assert_eq!(folded, report.total(), "partition broken for {primitive:?}");
    }
}

fn single_collector_config() -> DartConfig {
    DartConfig::builder()
        .slots(1024)
        .copies(2)
        .collectors(1)
        .mapping(MappingKind::Crc)
        .policy(ReturnPolicy::FirstMatch)
        .build()
        .unwrap()
}

/// An RDMA WRITE landing `value` in `key`'s slot for `copy`, stamped
/// with an explicit stored checksum (so tests can corrupt it).
fn frame_with_checksum(
    cluster: &CollectorCluster,
    key: &[u8],
    value: &[u8],
    copy: u8,
    psn: u32,
    checksum: u32,
) -> Vec<u8> {
    let mapping = CrcMapping::new();
    let cfg = single_collector_config();
    let slot = mapping.slot(key, copy, cfg.slots);
    let layout = cfg.layout;
    let mut payload = vec![0u8; layout.slot_len()];
    layout.encode(checksum, value, &mut payload).unwrap();
    let ep = cluster.collector(0).unwrap().endpoint();
    direct_telemetry_access::rdma::nic::build_roce_frame(
        ethernet::Address([0x02, 0, 0, 0, 0, 9]),
        ep.mac,
        ipv4::Address([10, 0, 0, 9]),
        ep.ip,
        49152,
        &direct_telemetry_access::wire::roce::RoceRepr::Write {
            bth: direct_telemetry_access::wire::roce::BthRepr {
                opcode: direct_telemetry_access::wire::roce::Opcode::UcRdmaWriteOnly,
                solicited: false,
                migration: true,
                pad_count: 0,
                partition_key: 0xFFFF,
                dest_qp: ep.qpn,
                ack_request: false,
                psn,
            },
            reth: direct_telemetry_access::wire::roce::RethRepr {
                virtual_addr: ep.base_va + slot * layout.slot_len() as u64,
                rkey: ep.rkey,
                dma_len: layout.slot_len() as u32,
            },
            payload,
        },
    )
}

#[test]
fn explain_classifies_forced_empty_and_return_error() {
    let mut cluster = CollectorCluster::new(single_collector_config()).unwrap();
    let mapping = CrcMapping::new();
    let mut psn = 0u32;
    let mut deliver = |cluster: &mut CollectorCluster, key: &[u8], value: &[u8], sum: u32| {
        for copy in 0..2 {
            let frame = frame_with_checksum(cluster, key, value, copy, psn, sum);
            cluster.deliver(&frame);
            psn += 1;
        }
    };

    // Forced return error (§4's collision overwrite): the key's truth is
    // written, then every copy is overwritten by a colliding report that
    // kept the same stored checksum but carries another value.
    let key = b"victim-key";
    let truth = vec![0xAA; 20];
    let lie = vec![0xBB; 20];
    let sum = mapping.key_checksum(key);
    deliver(&mut cluster, key, &truth, sum);
    deliver(&mut cluster, key, &lie, sum);
    let explain = cluster.query_explain(key);
    let outcome = explain.outcome.clone().unwrap();
    assert_eq!(outcome, QueryOutcome::Answer(lie));
    assert_eq!(classify(&outcome, &truth), QueryClass::ReturnError);
    let store = explain.candidates[0].explain.as_ref().unwrap();
    assert!(
        store
            .probes
            .iter()
            .all(|p| p.occupied && p.checksum_matched),
        "a collision overwrite leaves every checksum matching: {store:?}"
    );
    assert_eq!(store.reason.name(), "answered");

    // Forced empty return: reports arrive but with a corrupted stored
    // checksum, so no probed slot matches the key.
    let key = b"mismatch-key";
    let sum = mapping.key_checksum(key) ^ 0xFFFF_FFFF;
    deliver(&mut cluster, key, &[0xCC; 20], sum);
    let explain = cluster.query_explain(key);
    assert_eq!(explain.outcome, Ok(QueryOutcome::Empty));
    assert_eq!(explain.answered_by, None);
    let store = explain.candidates[0].explain.as_ref().unwrap();
    assert!(
        store
            .probes
            .iter()
            .all(|p| p.occupied && !p.checksum_matched),
        "corrupted checksums must be probed-but-unmatched: {store:?}"
    );
    assert_eq!(store.reason.name(), "no_slot_matched");
}

#[test]
fn explain_outcomes_tally_with_plain_queries() {
    // Overload one collector, then classify every key twice — through
    // the plain query and through explain — and require identical
    // outcome tallies (correct + empty + error == keys).
    let mut cluster = CollectorCluster::new(single_collector_config()).unwrap();
    let mapping = CrcMapping::new();
    let mut psn = 0u32;
    let keys: Vec<(Vec<u8>, Vec<u8>)> = (0..256u64)
        .map(|i| {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes().to_vec();
            let mut value = vec![0u8; 20];
            value[..8].copy_from_slice(&i.to_be_bytes());
            (key, value)
        })
        .collect();
    for (key, value) in &keys {
        let sum = mapping.key_checksum(key);
        for copy in 0..2 {
            let frame = frame_with_checksum(&cluster, key, value, copy, psn, sum);
            cluster.deliver(&frame);
            psn += 1;
        }
    }

    let mut plain_tally = [0u64; 3];
    let mut explain_tally = [0u64; 3];
    let index = |class: QueryClass| match class {
        QueryClass::Correct => 0,
        QueryClass::EmptyReturn => 1,
        QueryClass::ReturnError => 2,
    };
    for (key, truth) in &keys {
        let plain = cluster
            .try_query_with_policy(key, ReturnPolicy::FirstMatch)
            .unwrap();
        let explain = cluster.try_query_explain(key, ReturnPolicy::FirstMatch);
        assert_eq!(Ok(plain.clone()), explain.outcome, "paths diverged");
        plain_tally[index(classify(&plain, truth))] += 1;
        explain_tally[index(classify(&explain.outcome.unwrap(), truth))] += 1;
    }
    assert_eq!(plain_tally, explain_tally);
    assert_eq!(plain_tally.iter().sum::<u64>(), keys.len() as u64);
}
