//! §7 sketch aggregation end to end: many switches FETCH_ADD into one
//! Count-Min sketch in collector memory; the operator reads network-wide
//! frequency estimates with zero switch-side counter state.

use direct_telemetry_access::core::sketch::{CmSketchGeometry, CmSketchView};
use direct_telemetry_access::rdma::mr::AccessFlags;
use direct_telemetry_access::rdma::nic::RxAction;
use direct_telemetry_access::rdma::verbs::Device;
use direct_telemetry_access::switch::sketch::SketchReporter;
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::wire::roce::Psn;
use direct_telemetry_access::wire::{ethernet, ipv4};

const BASE_VA: u64 = 0x8000;

#[test]
fn network_wide_aggregation_with_zero_switch_state() {
    let geometry = CmSketchGeometry {
        base_va: BASE_VA,
        depth: 4,
        width: 1024,
        seed: 77,
    };

    // Collector: register the sketch region, one RC QP per switch.
    let mut device = Device::open(
        ethernet::Address([0x02, 0xC0, 0, 0, 0, 1]),
        ipv4::Address([10, 200, 0, 1]),
    );
    let (rkey, handle) = device
        .register_region(
            BASE_VA,
            geometry.bytes() as usize,
            AccessFlags::DART_COLLECTOR,
        )
        .unwrap();

    // Three switches each see part of the traffic of two flows.
    let traffic: &[(&[u8], [u64; 3])] = &[
        (b"flow:elephant", [400, 350, 250]), // 1000 packets total
        (b"flow:mouse", [3, 1, 2]),          // 6 packets total
    ];

    let mut reporters: Vec<SketchReporter> = (0..3)
        .map(|i| {
            let qpn = device.create_rc_qp(Psn::new(0), 0x900 + i).unwrap();
            let endpoint = device.endpoint(qpn, rkey, BASE_VA, geometry.bytes());
            SketchReporter::new(SwitchIdentity::derived(100 + i), geometry, endpoint, 49152)
                .unwrap()
        })
        .collect();

    let mut atomics = 0u64;
    for (key, per_switch) in traffic {
        for (i, reporter) in reporters.iter_mut().enumerate() {
            // Batch the switch's observed count into one update (a real
            // pipeline could also emit per-packet updates of amount 1).
            for frame in reporter.craft_update(key, per_switch[i]) {
                let outcome = device.nic_mut().handle_frame(&frame);
                assert!(
                    matches!(outcome.action, RxAction::AtomicExecuted { .. }),
                    "{outcome:?}"
                );
                assert!(outcome.response.is_some(), "RC atomics are ACKed");
                atomics += 1;
            }
        }
    }
    assert_eq!(atomics, 2 * 3 * 4, "2 flows × 3 switches × depth 4");
    assert_eq!(device.nic().counters().fetch_adds, atomics);

    // Operator: read the aggregated estimates.
    let memory = handle.snapshot();
    let view = CmSketchView::new(geometry, &memory, BASE_VA).unwrap();
    let elephant = view.estimate(b"flow:elephant");
    let mouse = view.estimate(b"flow:mouse");
    // CM never undercounts; with a near-empty sketch the estimates are
    // exact here.
    assert_eq!(elephant, 1000);
    assert_eq!(mouse, 6);
    assert_eq!(view.total_weight(), 1006);
    // And an unseen flow estimates (near) zero.
    assert!(view.estimate(b"flow:ghost") <= 1006 / 512);
}
