//! §7 native multi-write protocol, end to end: one switch packet fills
//! all `N` collector slots, and the data is queryable exactly as if `N`
//! standard WRITEs had been issued.

use direct_telemetry_access::core::config::DartConfig;
use direct_telemetry_access::core::hash::MappingKind;
use direct_telemetry_access::core::query::QueryOutcome;
use direct_telemetry_access::core::store::OwnedQueryEngine;
use direct_telemetry_access::rdma::mr::AccessFlags;
use direct_telemetry_access::rdma::mr::MemoryRegion;
use direct_telemetry_access::rdma::native::{NativeAction, NativeNic};
use direct_telemetry_access::rdma::nic::RNic;
use direct_telemetry_access::rdma::qp::{QueuePair, Transport};
use direct_telemetry_access::rdma::verbs::RemoteEndpoint;
use direct_telemetry_access::switch::control_plane::ControlPlane;
use direct_telemetry_access::switch::egress::{DartEgress, EgressConfig};
use direct_telemetry_access::switch::SwitchIdentity;
use direct_telemetry_access::wire::dart::{ChecksumWidth, SlotLayout};
use direct_telemetry_access::wire::roce::Psn;
use direct_telemetry_access::wire::{ethernet, ipv4};

const SLOTS: u64 = 1 << 12;
const RKEY: u32 = 0x1000;
const QPN: u32 = 0x100;
const BASE_VA: u64 = 0x4000_0000;

fn setup() -> (DartEgress, NativeNic, OwnedQueryEngine) {
    let mac = ethernet::Address([0x02, 0xC0, 0, 0, 0, 1]);
    let ip = ipv4::Address([10, 200, 0, 1]);
    let mut nic = RNic::new(mac, ip);
    let region_len = SLOTS as usize * 24;
    nic.register_mr(MemoryRegion::new(
        BASE_VA,
        region_len,
        RKEY,
        AccessFlags::DART_COLLECTOR,
    ))
    .unwrap();
    let mut qp = QueuePair::new(QPN, Transport::Uc);
    qp.ready(Psn::new(0));
    nic.create_qp(qp).unwrap();
    let native = NativeNic::new(nic, RKEY);

    let endpoint = RemoteEndpoint {
        mac,
        ip,
        qpn: QPN,
        rkey: RKEY,
        base_va: BASE_VA,
        region_len: region_len as u64,
        start_psn: Psn::new(0),
    };
    let mut egress = DartEgress::new(
        SwitchIdentity::derived(3),
        EgressConfig {
            copies: 2,
            slots: SLOTS,
            layout: SlotLayout {
                checksum: ChecksumWidth::B32,
                value_len: 20,
            },
            collectors: 1,
            udp_src_port: 49152,
            primitive: direct_telemetry_access::core::PrimitiveSpec::KeyWrite,
        },
        0x7,
    )
    .unwrap();
    ControlPlane::new()
        .install_directory(&mut egress, &[endpoint])
        .unwrap();

    let config = DartConfig::builder()
        .slots(SLOTS)
        .copies(2)
        .mapping(MappingKind::Crc)
        .build()
        .unwrap();
    let engine = OwnedQueryEngine::new(config).unwrap();
    (egress, native, engine)
}

#[test]
fn one_packet_answers_queries_like_n_writes() {
    let (mut egress, mut nic, engine) = setup();
    for i in 0..200u64 {
        let key = i.to_le_bytes();
        let report = egress
            .craft_multiwrite_report(&key, &[i as u8; 20])
            .unwrap();
        let action = nic.handle_frame(&report.frame);
        assert_eq!(
            action,
            NativeAction::MultiWriteExecuted { writes: 2, len: 24 },
            "report {i}"
        );
    }
    assert_eq!(nic.counters().multiwrites, 200);
    assert_eq!(nic.counters().fanout_writes, 400);

    let memory = nic.nic().mr(RKEY).unwrap().handle().snapshot();
    for i in 0..200u64 {
        let outcome = engine.query(&memory, &i.to_le_bytes()).unwrap();
        assert_eq!(outcome, QueryOutcome::Answer(vec![i as u8; 20]), "key {i}");
    }
}

#[test]
fn network_overhead_halves_versus_standard_rdma() {
    let (mut egress, _, _) = setup();
    let key = b"overhead-key";
    let value = [1u8; 20];
    let multi = egress
        .craft_multiwrite_report(key, &value)
        .unwrap()
        .frame
        .len();
    let writes: usize = (0..2u8)
        .map(|c| {
            egress
                .craft_report_copy(key, &value, c)
                .unwrap()
                .frame
                .len()
        })
        .sum();
    // §7: "significantly reduce the network overheads of our current
    // system which ... allows only a single memory write per packet."
    assert!(
        (multi as f64) < writes as f64 * 0.65,
        "multiwrite {multi} B vs {writes} B for 2 WRITEs"
    );
}

#[test]
fn multiwrite_and_standard_writes_coexist() {
    let (mut egress, mut nic, engine) = setup();
    // Key A via multiwrite, key B via two standard WRITEs.
    let a = egress
        .craft_multiwrite_report(b"key-A", &[0xAA; 20])
        .unwrap();
    assert!(matches!(
        nic.handle_frame(&a.frame),
        NativeAction::MultiWriteExecuted { .. }
    ));
    for copy in 0..2 {
        let b = egress
            .craft_report_copy(b"key-B", &[0xBB; 20], copy)
            .unwrap();
        assert!(matches!(
            nic.handle_frame(&b.frame),
            NativeAction::Passthrough(_)
        ));
    }
    let memory = nic.nic().mr(RKEY).unwrap().handle().snapshot();
    assert_eq!(
        engine.query(&memory, b"key-A").unwrap(),
        QueryOutcome::Answer(vec![0xAA; 20])
    );
    assert_eq!(
        engine.query(&memory, b"key-B").unwrap(),
        QueryOutcome::Answer(vec![0xBB; 20])
    );
}
