//! Million-key runs — the closest a laptop gets to the paper's 100 M
//! flows. Ignored by default (`cargo test -- --ignored` runs them);
//! `tests/scale_invariance.rs` demonstrates why smaller runs suffice.

use dta_bench::fig4::run_curve;
use dta_bench::storesim::{run, StoreSimParams};

#[test]
#[ignore = "runs a 1M-key simulation (~10s release, minutes in debug)"]
fn million_flow_figure4_checkpoints() {
    let keys = 1_000_000u64;
    let c30 = run_curve(keys, 30, 2, 10, 0xB16);
    assert!(
        (c30.average - 0.714).abs() < 0.02,
        "avg at 30 B/flow: {}",
        c30.average
    );
    assert!(
        (c30.age_buckets[0] - 0.40).abs() < 0.03,
        "oldest decile: {}",
        c30.age_buckets[0]
    );

    let c300n4 = run_curve(keys, 300, 4, 10, 0xB17);
    assert!(
        c300n4.average > 0.9985,
        "99.9% checkpoint: {}",
        c300n4.average
    );
}

#[test]
#[ignore = "runs a 4M-insert simulation"]
fn million_key_error_freedom_at_32_bits() {
    // §5.3 at the largest size we can simulate: still zero return errors
    // with 32-bit checksums.
    let result = run(
        StoreSimParams {
            slots: 1 << 20,
            keys: 2 << 20,
            copies: 2,
            ..StoreSimParams::default()
        },
        1,
    );
    assert_eq!(result.error, 0);
    assert!(result.total() == 2 << 20);
}
