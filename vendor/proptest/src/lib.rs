//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Implements the slice of proptest that this workspace's property
//! tests use: the [`proptest!`]/[`prop_assert!`]/[`prop_oneof!`]
//! macros, range/tuple/`Just`/`any` strategies, `prop_map`, and
//! `collection::vec`. Cases are generated from a per-test
//! deterministic RNG (seeded off the test name) — there is no
//! shrinking, so a failing case panics with the plain assert message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each `proptest!` test runs.
pub const CASES: usize = 64;

/// Deterministic case generator handed to strategies.
pub mod test_runner {
    use super::*;

    /// The RNG driving value generation for one property test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            self.rng.gen_range(0..n)
        }

        /// Raw 64-bit draw.
        pub fn bits(&mut self) -> u64 {
            self.rng.gen()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            self.rng.gen()
        }
    }

    /// Failure of one generated test case. `prop_assert!` returns this
    /// through the enclosing property body, and errors propagated with
    /// `?` convert into it — mirroring the real crate closely enough
    /// that `})?;` chains compile unchanged.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failed assertion / property violation.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }

        /// A rejected case (treated as a failure by this stand-in).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    // Deliberately NOT `std::error::Error`: that keeps this blanket
    // conversion coherent, exactly as in the real crate.
    impl<E: std::error::Error> From<E> for TestCaseError {
        fn from(e: E) -> TestCaseError {
            TestCaseError::fail(e.to_string())
        }
    }

    /// Outcome of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

use test_runner::TestRng;

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<S>) -> Union<S> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.bits()) * span) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.bits() as $t;
                    }
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (u128::from(rng.bits()) * span) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `any::<T>()` and the types it supports.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generate one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.bits() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bits() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.bits() as u8;
            }
            out
        }
    }

    /// Strategy over the whole domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (min, max) lengths.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below(self.max - self.min + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...)` body
/// runs [`CASES`] times over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                #[allow(non_snake_case)]
                let ($($arg,)+) = ($($strat,)+);
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&$arg, &mut __rng);
                    )+
                    // Run the body in a Result context so `prop_assert!`
                    // and `?` propagate failures like the real crate.
                    let __outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        panic!(
                            "property '{}' failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert within a property test: on failure, return a
/// [`test_runner::TestCaseError`] from the enclosing body (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Uniform choice among strategy arms (all arms must share one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u8..4, pair in (any::<u16>(), 1u32..=6)) {
            prop_assert!(x < 4);
            let (_, n) = pair;
            prop_assert!((1..=6).contains(&n));
        }

        #[test]
        fn vectors_respect_bounds(v in collection::vec(any::<u8>(), 3..=5)) {
            prop_assert!((3..=5).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let s = collection::vec(any::<u64>(), 0..8);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
