//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it actually uses: a seedable [`rngs::StdRng`] with
//! [`Rng::gen`] and [`Rng::gen_range`]. Generation quality matters — the
//! link fault model asserts observed Bernoulli loss within ±0.02 of
//! nominal over 10k draws — so the generator is xoshiro256** seeded via
//! splitmix64, not a toy LCG. The stream differs from upstream `rand`;
//! everything in-repo only relies on seed-determinism, not on matching
//! upstream byte-for-byte.

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (uniform over the type; `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard {
    /// Draw one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> SampleStandard for [u8; N] {
    fn sample_standard<R: RngCore>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded draw: Lemire multiply-shift reduction.
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** with splitmix64
    /// seed expansion. Fast, small, and statistically solid for the
    /// Monte-Carlo and fault-injection draws made here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_floats() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..400 {
            let v: u8 = r.gen_range(0..4);
            seen[v as usize] = true;
            let p: u16 = r.gen_range(32768..=60999);
            assert!((32768..=60999).contains(&p));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4500..=5500).contains(&heads), "heads {heads}");
    }
}
