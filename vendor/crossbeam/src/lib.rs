//! Offline stand-in for the `crossbeam` crate (channel subset).
//!
//! The workspace uses unbounded MPMC channels for switch→NIC links.
//! This stand-in backs them with a mutexed `VecDeque` — plenty for the
//! simulator's frame rates — while keeping crossbeam's semantics:
//! cloneable senders/receivers, `send` failing once every receiver is
//! gone, and non-blocking `try_recv`.

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails iff every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.queue.lock().unwrap().push_back(value);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.shared.queue.lock().unwrap().pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.senders.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> core::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> core::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 5);
            for i in 0..5 {
                assert_eq!(rx.try_recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(1u8).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn crosses_threads() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0u32..100 {
                    tx.send(i).unwrap();
                }
            });
            t.join().unwrap();
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
