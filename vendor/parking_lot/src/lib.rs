//! Offline stand-in for `parking_lot` (lock subset).
//!
//! Wraps the std locks behind parking_lot's non-poisoning interface:
//! `read()`/`write()`/`lock()` return guards directly, recovering the
//! inner data if a previous holder panicked.

use std::sync::PoisonError;

/// Guard from [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard from [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard from [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader-writer lock with non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with a non-poisoning accessor.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1u8, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_poison() {
        let l = std::sync::Arc::new(RwLock::new(0u32));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
