//! Offline stand-in for `criterion` (API subset).
//!
//! Runs each benchmark closure for a fixed small iteration count and
//! prints mean wall time per iteration — no statistics, warm-up, or
//! reports. Enough to keep `cargo bench` runnable and `--all-targets`
//! builds green without registry access.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark in this stand-in.
const ITERS: u64 = 20;

/// Reported workload size for throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (ignored by the stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Build from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepted by `bench_function`-style identifiers.
pub trait IntoBenchmarkId {
    /// Render to the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine` over a fixed iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }

    /// Time `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = 0u128;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.nanos_per_iter = total as f64 / ITERS as f64;
    }
}

fn report(label: &str, bench: &Bencher, throughput: Option<Throughput>) {
    let ns = bench.nanos_per_iter;
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label}: {ns:.1} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label}: {ns:.1} ns/iter ({rate:.0} B/s)");
        }
        _ => println!("{label}: {ns:.1} ns/iter"),
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, as real criterion does.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut f = f;
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.into_label(), &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing throughput/config.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration workload size for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the sample count (ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher::default();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_label()),
            &b,
            self.throughput,
        );
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        let mut b = Bencher::default();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.into_label()),
            &b,
            self.throughput,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, ITERS);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4)).sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
